//! The structured query representation.
//!
//! "As queries are parsed by INQUERY, a tree is constructed that represents
//! the query in an internal form." (Section 3.3). The node set covers the
//! INQUERY operators exercised by the paper's query sets: boolean
//! (`#and`/`#or`/`#not`), probabilistic (`#sum`/`#wsum`/`#max`), and
//! proximity (`#phrase`, `#uwN`) operators over terms.

/// A node of the internal query tree.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryNode {
    /// A single index term (already analyzer-normalised).
    Term(String),
    /// `#and(...)`: product of child beliefs.
    And(Vec<QueryNode>),
    /// `#or(...)`: probabilistic or of child beliefs.
    Or(Vec<QueryNode>),
    /// `#not(...)`: complement of the child belief.
    Not(Box<QueryNode>),
    /// `#sum(...)`: mean of child beliefs (the natural-language default).
    Sum(Vec<QueryNode>),
    /// `#wsum(w1 c1 w2 c2 ...)`: weighted mean of child beliefs.
    WSum(Vec<(f64, QueryNode)>),
    /// `#max(...)`: maximum child belief.
    Max(Vec<QueryNode>),
    /// `#phrase(t1 t2 ...)`: terms in adjacent positions, scored as a
    /// synthetic term.
    Phrase(Vec<String>),
    /// `#uwN(t1 t2 ...)`: all terms within an unordered window of `size`
    /// word positions.
    Window { size: u32, terms: Vec<String> },
}

impl QueryNode {
    /// Collects every leaf term in the tree (including phrase/window
    /// members), in first-appearance order — the pre-evaluation scan used
    /// to reserve resident objects (Section 3.3).
    pub fn leaf_terms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            QueryNode::Term(t) => out.push(t),
            QueryNode::And(c) | QueryNode::Or(c) | QueryNode::Sum(c) | QueryNode::Max(c) => {
                for child in c {
                    child.collect_terms(out);
                }
            }
            QueryNode::Not(c) => c.collect_terms(out),
            QueryNode::WSum(c) => {
                for (_, child) in c {
                    child.collect_terms(out);
                }
            }
            QueryNode::Phrase(terms) | QueryNode::Window { terms, .. } => {
                out.extend(terms.iter().map(String::as_str));
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + match self {
            QueryNode::Term(_) => 0,
            QueryNode::And(c) | QueryNode::Or(c) | QueryNode::Sum(c) | QueryNode::Max(c) => {
                c.iter().map(QueryNode::node_count).sum()
            }
            QueryNode::Not(c) => c.node_count(),
            QueryNode::WSum(c) => c.iter().map(|(_, n)| n.node_count()).sum(),
            QueryNode::Phrase(t) | QueryNode::Window { terms: t, .. } => t.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_terms_cover_all_node_kinds() {
        let q = QueryNode::Sum(vec![
            QueryNode::Term("alpha".into()),
            QueryNode::And(vec![
                QueryNode::Term("beta".into()),
                QueryNode::Not(Box::new(QueryNode::Term("gamma".into()))),
            ]),
            QueryNode::WSum(vec![(2.0, QueryNode::Term("delta".into()))]),
            QueryNode::Phrase(vec!["eps".into(), "zeta".into()]),
            QueryNode::Window { size: 5, terms: vec!["eta".into()] },
            QueryNode::Or(vec![QueryNode::Max(vec![QueryNode::Term("theta".into())])]),
        ]);
        assert_eq!(
            q.leaf_terms(),
            vec!["alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta"]
        );
        assert_eq!(q.node_count(), 16);
    }

    #[test]
    fn term_node_is_its_own_leaf() {
        let q = QueryNode::Term("solo".into());
        assert_eq!(q.leaf_terms(), vec!["solo"]);
        assert_eq!(q.node_count(), 1);
    }
}

//! Decoded-block cache: tier 2 of the serving-path cache hierarchy.
//!
//! The v2 record layout stores postings as bit-packed blocks of
//! [`crate::BLOCK_SIZE`] `(doc, tf)` pairs. Decoding a block means
//! word-unpacking two arrays, prefix-summing the doc gaps, and bumping the
//! tf−1 values — work that repeats wholesale when a popular term shows up
//! in query after query. This cache retains the *decoded* arrays, keyed by
//! `(store epoch, object id, block index)`, so a re-referenced block skips
//! [`crate::codec::unpack_bits`] entirely and is served as two `memcpy`s
//! into the cursor's scratch buffers.
//!
//! Design points:
//!
//! * **Byte-capacity bound.** The cache is sized in bytes of decoded
//!   payload, not entries; a full block costs ~1 KiB decoded. The bound is
//!   split evenly across the shards and never exceeded per shard.
//! * **Sharded, lock-light.** Keys hash onto a small fixed set of
//!   mutex-protected shards, so concurrent shard workers rarely contend.
//! * **Frequency-aware admission.** A block's first decode only records a
//!   *ghost* (key-only) entry; payload is admitted on the second decode.
//!   One-shot scans therefore pass through without displacing re-referenced
//!   blocks — the same scan resistance the S3-FIFO segment buffer provides
//!   one tier below, applied to decoded payloads.
//! * **FIFO eviction.** Within a shard, admitted blocks evict in insertion
//!   order; the admission filter is what provides retention quality, which
//!   keeps eviction itself trivially cheap.
//! * **Epoch invalidation.** The key embeds the owning store's epoch;
//!   mutating a record bumps the epoch, so stale entries become
//!   unreachable and age out through the byte bound rather than requiring
//!   a synchronous sweep.
//!
//! Cached blocks hold exactly what [`crate::BlockCursor`] materialises:
//! absolute doc ids (prefix-summed) and real tf values (+1 applied), fully
//! validated against the skip directory before insertion — a hit is
//! bit-identical to a fresh decode by construction, which the property
//! tests pin.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards. A small power of two: enough to
/// keep shard workers from colliding, few enough that the per-shard byte
/// bound stays meaningful at small capacities.
const NUM_SHARDS: usize = 8;

/// Fixed accounting overhead charged per resident entry (key, map slot,
/// queue slot, `Arc` header) on top of the decoded payload bytes.
const ENTRY_OVERHEAD: usize = 96;

/// Cache key: which decoded block, in which version of which object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// The owning store's epoch (bumped on any record mutation) combined
    /// with a store-unique id in the high bits, so caches shared across
    /// shard workers never alias blocks from different physical stores.
    pub epoch: u64,
    /// Backend object id (the dictionary's `store_ref`).
    pub object: u64,
    /// Block index within the record's skip directory.
    pub block: u32,
}

/// One decoded posting block: absolute doc ids and real tf values, exactly
/// as [`crate::BlockCursor`] holds them in its scratch buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedBlock {
    /// Absolute (prefix-summed) document ids, ascending.
    pub docs: Vec<u32>,
    /// Term frequencies (the stored tf−1 values, re-bumped).
    pub tfs: Vec<u32>,
}

impl DecodedBlock {
    /// Bytes this entry charges against the cache's capacity.
    pub fn cost(&self) -> usize {
        (self.docs.len() + self.tfs.len()) * std::mem::size_of::<u32>() + ENTRY_OVERHEAD
    }
}

/// Point-in-time counters for telemetry and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to decode.
    pub misses: u64,
    /// Blocks admitted past the ghost filter.
    pub admits: u64,
    /// Admitted blocks evicted by the byte bound.
    pub evicts: u64,
    /// Decoded payload bytes currently resident (including per-entry
    /// overhead).
    pub bytes: usize,
    /// Admitted entries currently resident.
    pub entries: usize,
    /// Configured byte capacity.
    pub capacity: usize,
}

impl BlockCacheStats {
    /// Hit fraction over all lookups so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard {
    map: HashMap<BlockKey, Arc<DecodedBlock>>,
    /// Admitted keys in insertion order — the FIFO eviction queue.
    queue: VecDeque<BlockKey>,
    /// Resident payload bytes (sum of entry costs).
    bytes: usize,
    /// Key-only history of blocks seen exactly once, in insertion order.
    ghosts: VecDeque<BlockKey>,
}

impl Shard {
    fn new() -> Self {
        Shard { map: HashMap::new(), queue: VecDeque::new(), bytes: 0, ghosts: VecDeque::new() }
    }
}

/// The sharded, byte-bounded decoded-block cache. Shared `Arc`-style
/// between the store that owns it and every cursor it serves.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    /// Byte capacity per shard (total divided evenly).
    shard_capacity: usize,
    /// Ghost-history length per shard, in keys.
    ghost_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    admits: AtomicU64,
    evicts: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache").field("stats", &self.stats()).finish()
    }
}

impl BlockCache {
    /// Creates a cache bounded to roughly `capacity_bytes` of decoded
    /// payload (split evenly across shards; each shard holds at least one
    /// block so a tiny bound still functions).
    pub fn new(capacity_bytes: usize) -> Self {
        let shard_capacity = (capacity_bytes / NUM_SHARDS).max(2048);
        // Remember ~2× as many ghost keys as blocks fit resident: long
        // enough to catch re-references across adjacent queries, short
        // enough that the history itself stays a few KiB.
        let ghost_capacity = (2 * shard_capacity / 1024).clamp(64, 65_536);
        BlockCache {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            shard_capacity,
            ghost_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            admits: AtomicU64::new(0),
            evicts: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &BlockKey) -> &Mutex<Shard> {
        // Cheap key mix; the epoch's store-id half and the object id carry
        // most of the entropy.
        let h = key
            .object
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.epoch)
            .wrapping_add(key.block as u64);
        &self.shards[(h >> 56) as usize % NUM_SHARDS]
    }

    /// Looks up a decoded block, counting the outcome.
    pub fn get(&self, key: &BlockKey) -> Option<Arc<DecodedBlock>> {
        let shard = self.shard_of(key).lock().unwrap();
        match shard.map.get(key) {
            Some(block) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(block))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Offers a freshly decoded block. The first offer of a key only
    /// records it in the ghost history; a repeat offer (the block was
    /// decoded again after a miss) admits the payload `make` builds, then
    /// evicts FIFO-oldest entries until the shard is back under its byte
    /// bound. Returns whether the payload was admitted.
    pub fn offer_with<F: FnOnce() -> Arc<DecodedBlock>>(&self, key: BlockKey, make: F) -> bool {
        let mut shard = self.shard_of(&key).lock().unwrap();
        if shard.map.contains_key(&key) {
            return false; // raced with another worker's admit
        }
        if let Some(pos) = shard.ghosts.iter().position(|g| g == &key) {
            shard.ghosts.remove(pos);
            let block = make();
            shard.bytes += block.cost();
            shard.map.insert(key, block);
            shard.queue.push_back(key);
            self.admits.fetch_add(1, Ordering::Relaxed);
            let mut evicted = 0u64;
            while shard.bytes > self.shard_capacity && shard.queue.len() > 1 {
                // Never evict the entry just admitted (it is the queue
                // tail); oversized singletons stay resident rather than
                // thrash.
                let victim = shard.queue.pop_front().expect("len > 1");
                if let Some(old) = shard.map.remove(&victim) {
                    shard.bytes -= old.cost();
                    evicted += 1;
                }
            }
            if evicted > 0 {
                self.evicts.fetch_add(evicted, Ordering::Relaxed);
            }
            true
        } else {
            shard.ghosts.push_back(key);
            if shard.ghosts.len() > self.ghost_capacity {
                shard.ghosts.pop_front();
            }
            false
        }
    }

    /// Point-in-time counters summed over all shards.
    pub fn stats(&self) -> BlockCacheStats {
        let mut bytes = 0usize;
        let mut entries = 0usize;
        for shard in &self.shards {
            let s = shard.lock().unwrap();
            bytes += s.bytes;
            entries += s.map.len();
        }
        BlockCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            admits: self.admits.load(Ordering::Relaxed),
            evicts: self.evicts.load(Ordering::Relaxed),
            bytes,
            entries,
            capacity: self.shard_capacity * NUM_SHARDS,
        }
    }

    /// Total byte capacity the cache enforces.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * NUM_SHARDS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(object: u64, block: u32) -> BlockKey {
        BlockKey { epoch: 1, object, block }
    }

    fn block(n: usize) -> Arc<DecodedBlock> {
        Arc::new(DecodedBlock { docs: (0..n as u32).collect(), tfs: vec![1; n] })
    }

    #[test]
    fn first_offer_is_ghost_second_admits() {
        let cache = BlockCache::new(1 << 20);
        assert!(cache.get(&key(7, 0)).is_none());
        assert!(!cache.offer_with(key(7, 0), || block(128)), "first offer stays ghost");
        assert!(cache.get(&key(7, 0)).is_none(), "ghost has no payload");
        assert!(cache.offer_with(key(7, 0), || block(128)), "second offer admits");
        let hit = cache.get(&key(7, 0)).expect("admitted");
        assert_eq!(hit.docs.len(), 128);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.admits, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn byte_bound_is_never_exceeded() {
        let cache = BlockCache::new(64 * 1024);
        for i in 0..500u64 {
            let k = key(i, 0);
            cache.offer_with(k, || block(128));
            cache.offer_with(k, || block(128));
            let stats = cache.stats();
            for shard in &cache.shards {
                let s = shard.lock().unwrap();
                assert!(
                    s.bytes <= cache.shard_capacity || s.map.len() == 1,
                    "shard over bound with {} entries",
                    s.map.len()
                );
            }
            assert_eq!(
                stats.bytes,
                cache
                    .shards
                    .iter()
                    .map(|s| s.lock().unwrap().map.values().map(|b| b.cost()).sum::<usize>())
                    .sum::<usize>(),
                "byte accounting drifted"
            );
        }
        let stats = cache.stats();
        assert!(stats.evicts > 0, "a 64 KiB bound cannot hold 500 blocks");
        assert!(stats.entries < 500);
    }

    #[test]
    fn epoch_change_makes_entries_unreachable() {
        let cache = BlockCache::new(1 << 20);
        let old = BlockKey { epoch: 1, object: 3, block: 0 };
        cache.offer_with(old, || block(16));
        cache.offer_with(old, || block(16));
        assert!(cache.get(&old).is_some());
        let new = BlockKey { epoch: 2, object: 3, block: 0 };
        assert!(cache.get(&new).is_none(), "bumped epoch misses");
    }

    #[test]
    fn resident_keys_are_not_reoffered() {
        let cache = BlockCache::new(1 << 20);
        let k = key(1, 4);
        cache.offer_with(k, || block(8));
        assert!(cache.offer_with(k, || block(8)));
        assert!(!cache.offer_with(k, || panic!("must not build for a resident key")));
        assert_eq!(cache.stats().admits, 1);
    }

    #[test]
    fn ghost_history_is_bounded() {
        let cache = BlockCache::new(16 * 1024);
        for i in 0..200_000u64 {
            cache.offer_with(key(i, 0), || block(1));
        }
        for shard in &cache.shards {
            let s = shard.lock().unwrap();
            assert!(s.ghosts.len() <= cache.ghost_capacity);
        }
    }
}

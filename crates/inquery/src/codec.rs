//! Variable-byte integer coding for compressed inverted records.
//!
//! INQUERY stores each inverted record "as a vector of integers in a
//! compressed format. The average compression rate for the four collections
//! ... is about 60%." (Section 3.1). Document ids and positions are
//! delta-encoded and every integer is variable-byte coded: seven payload
//! bits per byte, high bit set on the final byte. Small, frequent values —
//! deltas of dense posting lists, term frequencies of 1 — take one byte.

/// Appends `value` to `out` in variable-byte form.
#[inline]
pub fn encode_vbyte(mut value: u32, out: &mut Vec<u8>) {
    loop {
        let low = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(low | 0x80);
            return;
        }
        out.push(low);
    }
}

/// Decodes one variable-byte integer starting at `pos`, advancing `pos`.
/// Returns `None` on truncated input.
#[inline]
pub fn decode_vbyte(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut value: u32 = 0;
    let mut shift = 0;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        value |= ((b & 0x7F) as u32) << shift;
        if b & 0x80 != 0 {
            return Some(value);
        }
        shift += 7;
        if shift >= 35 {
            return None; // would overflow u32: corrupt input
        }
    }
}

/// Encodes a strictly ascending sequence as vbyte-coded deltas (first value
/// absolute, then gaps).
pub fn encode_ascending(values: &[u32], out: &mut Vec<u8>) {
    let mut prev = 0u32;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            encode_vbyte(v, out);
        } else {
            debug_assert!(v > prev, "sequence must be strictly ascending");
            encode_vbyte(v - prev, out);
        }
        prev = v;
    }
}

/// Decodes `count` delta-coded values written by [`encode_ascending`].
pub fn decode_ascending(bytes: &[u8], pos: &mut usize, count: usize) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(count);
    decode_ascending_into(bytes, pos, count, &mut out)?;
    Some(out)
}

/// Decodes `count` delta-coded values into a caller-owned scratch buffer,
/// clearing it first. The cursor hot path reuses one buffer across calls
/// instead of allocating a fresh `Vec` per posting.
pub fn decode_ascending_into(
    bytes: &[u8],
    pos: &mut usize,
    count: usize,
    out: &mut Vec<u32>,
) -> Option<()> {
    out.clear();
    out.reserve(count);
    let mut prev = 0u32;
    for i in 0..count {
        let v = decode_vbyte(bytes, pos)?;
        prev = if i == 0 { v } else { prev.checked_add(v)? };
        out.push(prev);
    }
    Some(())
}

/// Bits needed to represent `value` (0 for 0). The per-block bit width of
/// a packed array is the width of its largest element.
#[inline]
pub fn bit_width(value: u32) -> u32 {
    32 - value.leading_zeros()
}

/// Bytes occupied by `count` values packed at `width` bits each: whole
/// little-endian `u64` words, so the decoder reads aligned 8-byte chunks.
/// At the full block size of 128 the bit count is always a multiple of 64
/// and no padding is wasted.
#[inline]
pub fn packed_len(count: usize, width: u32) -> usize {
    (count * width as usize).div_ceil(64) * 8
}

/// Appends `values` to `out` packed at `width` bits each, little-endian
/// within each 64-bit word, words in little-endian byte order. Every value
/// must fit in `width` bits; `width == 0` writes nothing (all zeros).
pub fn pack_bits(values: &[u32], width: u32, out: &mut Vec<u8>) {
    debug_assert!(width <= 32);
    if width == 0 {
        debug_assert!(values.iter().all(|&v| v == 0));
        return;
    }
    let mut acc: u64 = 0;
    let mut used: u32 = 0;
    for &v in values {
        debug_assert!(bit_width(v) <= width, "value {v} exceeds width {width}");
        acc |= (v as u64) << used;
        used += width;
        if used >= 64 {
            out.extend_from_slice(&acc.to_le_bytes());
            used -= 64;
            // Bits of `v` that did not fit in the flushed word.
            acc = if used == 0 { 0 } else { (v as u64) >> (width - used) };
        }
    }
    if used > 0 {
        out.extend_from_slice(&acc.to_le_bytes());
    }
}

/// Decodes `count` values packed by [`pack_bits`] into a caller-owned
/// scratch buffer, clearing it first. Word-at-a-time and branch-free in
/// the main loop: a value starting at bit `i * width` lives entirely
/// within the 8-byte window at byte `(i * width) / 8` (the in-byte shift
/// is at most 7, and 7 + 32 < 64), so each value is one unaligned word
/// read, a shift, and a mask. Values whose window would run past the
/// packed region decode from a zero-padded 16-byte tail copy. Returns
/// `None` when `width > 32` or `bytes` is shorter than
/// [`packed_len`]`(count, width)`.
pub fn unpack_bits(bytes: &[u8], count: usize, width: u32, out: &mut Vec<u32>) -> Option<()> {
    out.clear();
    if width > 32 {
        return None;
    }
    if width == 0 {
        out.resize(count, 0);
        return Some(());
    }
    let need = packed_len(count, width);
    if bytes.len() < need {
        return None;
    }
    let mask: u64 = (1u64 << width) - 1;
    let w = width as usize;
    // Largest prefix whose 8-byte read windows stay inside the region:
    // value i is safe iff (i*w)/8 + 8 <= need.
    let safe = if need >= 8 { count.min(((need - 8) * 8 + 7) / w + 1) } else { 0 };
    out.resize(count, 0);
    for (i, slot) in out[..safe].iter_mut().enumerate() {
        let bit = i * w;
        *slot = ((read_word(bytes, bit >> 3) >> (bit & 7)) & mask) as u32;
    }
    if safe < count {
        // Tail values start within the last 8 bytes; rebase their reads
        // onto a padded copy so the windows cannot overrun.
        let base = need.saturating_sub(8);
        let mut buf = [0u8; 16];
        buf[..need - base].copy_from_slice(&bytes[base..need]);
        for (i, slot) in out[safe..].iter_mut().enumerate() {
            let bit = (safe + i) * w;
            let at = (bit >> 3) - base;
            let word = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
            *slot = ((word >> (bit & 7)) & mask) as u32;
        }
    }
    Some(())
}

#[inline]
fn read_word(bytes: &[u8], at: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(w)
}

/// Number of bytes `value` occupies in vbyte form.
#[inline]
pub fn vbyte_len(value: u32) -> usize {
    match value {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0xFFF_FFFF => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_values_round_trip() {
        for v in [0u32, 1, 127, 128, 300, 16_383, 16_384, 1 << 20, u32::MAX] {
            let mut buf = Vec::new();
            encode_vbyte(v, &mut buf);
            assert_eq!(buf.len(), vbyte_len(v), "length of {v}");
            let mut pos = 0;
            assert_eq!(decode_vbyte(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn streams_round_trip() {
        let values = vec![5u32, 0, 127, 128, 99999, 1, u32::MAX, 42];
        let mut buf = Vec::new();
        for &v in &values {
            encode_vbyte(v, &mut buf);
        }
        let mut pos = 0;
        let decoded: Vec<u32> =
            (0..values.len()).map(|_| decode_vbyte(&buf, &mut pos).unwrap()).collect();
        assert_eq!(decoded, values);
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut buf = Vec::new();
        encode_vbyte(1_000_000, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_vbyte(&buf[..buf.len() - 1], &mut pos), None);
        let mut pos = 0;
        assert_eq!(decode_vbyte(&[], &mut pos), None);
    }

    #[test]
    fn corrupt_overlong_encoding_is_rejected() {
        // Six continuation bytes would exceed 32 bits.
        let bad = [0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0xFF];
        let mut pos = 0;
        assert_eq!(decode_vbyte(&bad, &mut pos), None);
    }

    #[test]
    fn ascending_delta_round_trip() {
        let values = vec![3u32, 4, 10, 1000, 1001, 500_000];
        let mut buf = Vec::new();
        encode_ascending(&values, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_ascending(&buf, &mut pos, values.len()), Some(values));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn dense_sequences_compress_well() {
        let values: Vec<u32> = (1000..2000).collect();
        let mut buf = Vec::new();
        encode_ascending(&values, &mut buf);
        // 999 gaps of 1 at one byte each + 2 bytes for the first value.
        assert_eq!(buf.len(), 999 + 2);
        // Versus 4 bytes per raw u32: 75% compression.
        assert!(buf.len() < values.len() * 4, "compressed must beat raw u32s");
    }

    #[test]
    fn empty_ascending_sequence() {
        let mut buf = Vec::new();
        encode_ascending(&[], &mut buf);
        assert!(buf.is_empty());
        let mut pos = 0;
        assert_eq!(decode_ascending(&buf, &mut pos, 0), Some(vec![]));
    }

    #[test]
    fn bit_width_covers_range() {
        assert_eq!(bit_width(0), 0);
        assert_eq!(bit_width(1), 1);
        assert_eq!(bit_width(2), 2);
        assert_eq!(bit_width(255), 8);
        assert_eq!(bit_width(256), 9);
        assert_eq!(bit_width(u32::MAX), 32);
    }

    #[test]
    fn packed_values_round_trip_at_every_width() {
        for width in 0u32..=32 {
            let max = if width == 0 { 0 } else { ((1u64 << width) - 1) as u32 };
            // A mix of extremes and a ramp, at an awkward non-multiple count.
            let values: Vec<u32> = (0..97u64)
                .map(|i| if i % 3 == 0 { max } else { (i % (max as u64 + 1)) as u32 })
                .collect();
            let mut buf = Vec::new();
            pack_bits(&values, width, &mut buf);
            assert_eq!(buf.len(), packed_len(values.len(), width), "width {width}");
            let mut out = Vec::new();
            unpack_bits(&buf, values.len(), width, &mut out).unwrap();
            assert_eq!(out, values, "width {width}");
        }
    }

    #[test]
    fn full_block_padding_is_zero() {
        // 128 values at any width is a whole number of 64-bit words.
        for width in [1u32, 7, 13, 20, 32] {
            assert_eq!(packed_len(128, width), 128 * width as usize / 8);
        }
    }

    #[test]
    fn unpack_rejects_truncated_and_overwide_input() {
        let values: Vec<u32> = (0..50).collect();
        let mut buf = Vec::new();
        pack_bits(&values, 6, &mut buf);
        let mut out = Vec::new();
        assert!(unpack_bits(&buf[..buf.len() - 1], 50, 6, &mut out).is_none());
        assert!(unpack_bits(&buf, 50, 33, &mut out).is_none());
        assert!(unpack_bits(&buf, 50, 6, &mut out).is_some());
    }

    #[test]
    fn zero_width_packs_nothing() {
        let zeros = vec![0u32; 12];
        let mut buf = Vec::new();
        pack_bits(&zeros, 0, &mut buf);
        assert!(buf.is_empty());
        let mut out = Vec::new();
        unpack_bits(&buf, 12, 0, &mut out).unwrap();
        assert_eq!(out, zeros);
    }

    #[test]
    fn ascending_overflow_gap_is_corrupt() {
        // A delta that would push the running value past u32::MAX.
        let mut buf = Vec::new();
        encode_vbyte(u32::MAX, &mut buf);
        encode_vbyte(10, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_ascending(&buf, &mut pos, 2), None);
    }
}

//! Variable-byte integer coding for compressed inverted records.
//!
//! INQUERY stores each inverted record "as a vector of integers in a
//! compressed format. The average compression rate for the four collections
//! ... is about 60%." (Section 3.1). Document ids and positions are
//! delta-encoded and every integer is variable-byte coded: seven payload
//! bits per byte, high bit set on the final byte. Small, frequent values —
//! deltas of dense posting lists, term frequencies of 1 — take one byte.

/// Appends `value` to `out` in variable-byte form.
#[inline]
pub fn encode_vbyte(mut value: u32, out: &mut Vec<u8>) {
    loop {
        let low = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(low | 0x80);
            return;
        }
        out.push(low);
    }
}

/// Decodes one variable-byte integer starting at `pos`, advancing `pos`.
/// Returns `None` on truncated input.
#[inline]
pub fn decode_vbyte(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut value: u32 = 0;
    let mut shift = 0;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        value |= ((b & 0x7F) as u32) << shift;
        if b & 0x80 != 0 {
            return Some(value);
        }
        shift += 7;
        if shift >= 35 {
            return None; // would overflow u32: corrupt input
        }
    }
}

/// Encodes a strictly ascending sequence as vbyte-coded deltas (first value
/// absolute, then gaps).
pub fn encode_ascending(values: &[u32], out: &mut Vec<u8>) {
    let mut prev = 0u32;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            encode_vbyte(v, out);
        } else {
            debug_assert!(v > prev, "sequence must be strictly ascending");
            encode_vbyte(v - prev, out);
        }
        prev = v;
    }
}

/// Decodes `count` delta-coded values written by [`encode_ascending`].
pub fn decode_ascending(bytes: &[u8], pos: &mut usize, count: usize) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(count);
    decode_ascending_into(bytes, pos, count, &mut out)?;
    Some(out)
}

/// Decodes `count` delta-coded values into a caller-owned scratch buffer,
/// clearing it first. The cursor hot path reuses one buffer across calls
/// instead of allocating a fresh `Vec` per posting.
pub fn decode_ascending_into(
    bytes: &[u8],
    pos: &mut usize,
    count: usize,
    out: &mut Vec<u32>,
) -> Option<()> {
    out.clear();
    out.reserve(count);
    let mut prev = 0u32;
    for i in 0..count {
        let v = decode_vbyte(bytes, pos)?;
        prev = if i == 0 { v } else { prev.checked_add(v)? };
        out.push(prev);
    }
    Some(())
}

/// Number of bytes `value` occupies in vbyte form.
#[inline]
pub fn vbyte_len(value: u32) -> usize {
    match value {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0xFFF_FFFF => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_values_round_trip() {
        for v in [0u32, 1, 127, 128, 300, 16_383, 16_384, 1 << 20, u32::MAX] {
            let mut buf = Vec::new();
            encode_vbyte(v, &mut buf);
            assert_eq!(buf.len(), vbyte_len(v), "length of {v}");
            let mut pos = 0;
            assert_eq!(decode_vbyte(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn streams_round_trip() {
        let values = vec![5u32, 0, 127, 128, 99999, 1, u32::MAX, 42];
        let mut buf = Vec::new();
        for &v in &values {
            encode_vbyte(v, &mut buf);
        }
        let mut pos = 0;
        let decoded: Vec<u32> =
            (0..values.len()).map(|_| decode_vbyte(&buf, &mut pos).unwrap()).collect();
        assert_eq!(decoded, values);
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut buf = Vec::new();
        encode_vbyte(1_000_000, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_vbyte(&buf[..buf.len() - 1], &mut pos), None);
        let mut pos = 0;
        assert_eq!(decode_vbyte(&[], &mut pos), None);
    }

    #[test]
    fn corrupt_overlong_encoding_is_rejected() {
        // Six continuation bytes would exceed 32 bits.
        let bad = [0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0xFF];
        let mut pos = 0;
        assert_eq!(decode_vbyte(&bad, &mut pos), None);
    }

    #[test]
    fn ascending_delta_round_trip() {
        let values = vec![3u32, 4, 10, 1000, 1001, 500_000];
        let mut buf = Vec::new();
        encode_ascending(&values, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_ascending(&buf, &mut pos, values.len()), Some(values));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn dense_sequences_compress_well() {
        let values: Vec<u32> = (1000..2000).collect();
        let mut buf = Vec::new();
        encode_ascending(&values, &mut buf);
        // 999 gaps of 1 at one byte each + 2 bytes for the first value.
        assert_eq!(buf.len(), 999 + 2);
        // Versus 4 bytes per raw u32: 75% compression.
        assert!(buf.len() < values.len() * 4, "compressed must beat raw u32s");
    }

    #[test]
    fn empty_ascending_sequence() {
        let mut buf = Vec::new();
        encode_ascending(&[], &mut buf);
        assert!(buf.is_empty());
        let mut pos = 0;
        assert_eq!(decode_ascending(&buf, &mut pos, 0), Some(vec![]));
    }

    #[test]
    fn ascending_overflow_gap_is_corrupt() {
        // A delta that would push the running value past u32::MAX.
        let mut buf = Vec::new();
        encode_vbyte(u32::MAX, &mut buf);
        encode_vbyte(10, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_ascending(&buf, &mut pos, 2), None);
    }
}

//! Error type for the INQUERY engine.

use std::fmt;

/// Errors surfaced by indexing and query processing.
#[derive(Debug)]
pub enum InqueryError {
    /// The query text could not be parsed; carries a human-readable reason
    /// and the byte offset where parsing failed.
    Parse { message: String, offset: usize },
    /// An inverted record failed to decode (storage corruption).
    BadRecord(String),
    /// The inverted-file store failed.
    Store(Box<dyn std::error::Error + Send + Sync>),
}

impl fmt::Display for InqueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InqueryError::Parse { message, offset } => {
                write!(f, "query parse error at byte {offset}: {message}")
            }
            InqueryError::BadRecord(msg) => write!(f, "bad inverted record: {msg}"),
            InqueryError::Store(e) => write!(f, "inverted-file store error: {e}"),
        }
    }
}

impl std::error::Error for InqueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InqueryError::Store(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, InqueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = InqueryError::Parse { message: "unbalanced paren".into(), offset: 17 };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("unbalanced"));
        assert!(InqueryError::BadRecord("short".into()).to_string().contains("short"));
    }

    #[test]
    fn store_errors_expose_source() {
        let inner = std::io::Error::other("disk gone");
        let e = InqueryError::Store(Box::new(inner));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("disk gone"));
    }
}

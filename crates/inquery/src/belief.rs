//! Inference-network belief functions.
//!
//! "INQUERY is a probabilistic information retrieval system based upon a
//! Bayesian inference network model. ... the Bayesian method of combining
//! belief assigns a numeric value to each document" (Sections 3.1, 4).
//!
//! The leaf (term) belief follows the published INQUERY formulation
//! (Turtle & Croft, TOIS 1991; the tf normalisation is the INQUERY variant
//! with document-length correction):
//!
//! ```text
//! T = tf / (tf + 0.5 + 1.5 · dl / avg_dl)          (term-frequency weight)
//! I = ln((N + 0.5) / df) / ln(N + 1)               (inverse document freq.)
//! belief = d + (1 - d) · T · I,  d = 0.4           (default belief)
//! ```
//!
//! Query operators combine child beliefs per document:
//! `#and` = product, `#or` = 1 − ∏(1 − pᵢ), `#not` = 1 − p,
//! `#sum` = mean, `#wsum` = weighted mean, `#max` = maximum.

/// Tunable parameters of the belief functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeliefParams {
    /// The default belief assigned when a term is absent (INQUERY's 0.4).
    pub default_belief: f64,
    /// The additive tf-normalisation constant (0.5).
    pub tf_base: f64,
    /// The document-length normalisation multiplier (1.5).
    pub len_factor: f64,
}

impl Default for BeliefParams {
    fn default() -> Self {
        BeliefParams { default_belief: 0.4, tf_base: 0.5, len_factor: 1.5 }
    }
}

/// Collection-level statistics the belief functions need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// Number of documents in the collection.
    pub num_docs: u32,
    /// Mean document length in tokens.
    pub avg_doc_len: f64,
}

impl BeliefParams {
    /// Belief contributed by a term occurring `tf` times in a document of
    /// `doc_len` tokens, where the term appears in `df` documents.
    pub fn term_belief(&self, tf: u32, doc_len: u32, df: u32, stats: &CollectionStats) -> f64 {
        if tf == 0 || df == 0 || stats.num_docs == 0 {
            return self.default_belief;
        }
        let dl_ratio =
            if stats.avg_doc_len > 0.0 { doc_len as f64 / stats.avg_doc_len } else { 1.0 };
        let t = tf as f64 / (tf as f64 + self.tf_base + self.len_factor * dl_ratio);
        let n = stats.num_docs as f64;
        let i = ((n + 0.5) / df as f64).ln() / (n + 1.0).ln();
        let i = i.max(0.0); // df == N gives a tiny positive value; df > N is clamped
        self.default_belief + (1.0 - self.default_belief) * t * i
    }

    /// `#and`: the product of child beliefs.
    pub fn and(beliefs: impl IntoIterator<Item = f64>) -> f64 {
        beliefs.into_iter().product()
    }

    /// `#or`: 1 − ∏(1 − pᵢ).
    pub fn or(beliefs: impl IntoIterator<Item = f64>) -> f64 {
        1.0 - beliefs.into_iter().map(|p| 1.0 - p).product::<f64>()
    }

    /// `#not`: 1 − p.
    pub fn not(belief: f64) -> f64 {
        1.0 - belief
    }

    /// `#sum`: the mean of child beliefs.
    pub fn sum(beliefs: &[f64]) -> f64 {
        if beliefs.is_empty() {
            0.0
        } else {
            beliefs.iter().sum::<f64>() / beliefs.len() as f64
        }
    }

    /// `#wsum`: the weighted mean of child beliefs.
    pub fn wsum(weighted: &[(f64, f64)]) -> f64 {
        let total: f64 = weighted.iter().map(|(w, _)| w).sum();
        if total == 0.0 {
            0.0
        } else {
            weighted.iter().map(|(w, p)| w * p).sum::<f64>() / total
        }
    }

    /// `#max`: the maximum child belief.
    pub fn max(beliefs: impl IntoIterator<Item = f64>) -> f64 {
        beliefs.into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATS: CollectionStats = CollectionStats { num_docs: 1000, avg_doc_len: 100.0 };

    fn params() -> BeliefParams {
        BeliefParams::default()
    }

    #[test]
    fn absent_term_gets_default_belief() {
        assert_eq!(params().term_belief(0, 100, 10, &STATS), 0.4);
    }

    #[test]
    fn belief_increases_with_tf() {
        let p = params();
        let b1 = p.term_belief(1, 100, 10, &STATS);
        let b2 = p.term_belief(2, 100, 10, &STATS);
        let b10 = p.term_belief(10, 100, 10, &STATS);
        assert!(b1 > 0.4);
        assert!(b2 > b1);
        assert!(b10 > b2);
        assert!(b10 < 1.0);
    }

    #[test]
    fn rare_terms_score_higher_than_common_terms() {
        let p = params();
        let rare = p.term_belief(3, 100, 2, &STATS);
        let common = p.term_belief(3, 100, 800, &STATS);
        assert!(rare > common);
    }

    #[test]
    fn longer_documents_are_penalised() {
        let p = params();
        let short = p.term_belief(3, 50, 10, &STATS);
        let long = p.term_belief(3, 500, 10, &STATS);
        assert!(short > long);
    }

    #[test]
    fn term_in_every_document_contributes_almost_nothing() {
        let p = params();
        let b = p.term_belief(5, 100, 1000, &STATS);
        assert!((0.4..0.41).contains(&b), "belief {b}");
    }

    #[test]
    fn belief_is_always_a_probability() {
        let p = params();
        for tf in [0u32, 1, 5, 100, 10_000] {
            for df in [1u32, 10, 999, 1000] {
                for dl in [1u32, 100, 100_000] {
                    let b = p.term_belief(tf, dl, df, &STATS);
                    assert!((0.0..=1.0).contains(&b), "tf={tf} df={df} dl={dl}: {b}");
                }
            }
        }
    }

    #[test]
    fn operator_combinators() {
        assert!((BeliefParams::and([0.5, 0.5]) - 0.25).abs() < 1e-12);
        assert!((BeliefParams::or([0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert!((BeliefParams::not(0.3) - 0.7).abs() < 1e-12);
        assert!((BeliefParams::sum(&[0.2, 0.4, 0.6]) - 0.4).abs() < 1e-12);
        assert!(
            (BeliefParams::wsum(&[(1.0, 0.2), (3.0, 0.6)]) - 0.5).abs() < 1e-12,
            "weighted mean"
        );
        assert_eq!(BeliefParams::max([0.1, 0.9, 0.5]), 0.9);
        assert_eq!(BeliefParams::sum(&[]), 0.0);
        assert_eq!(BeliefParams::wsum(&[]), 0.0);
    }

    #[test]
    fn empty_collection_is_safe() {
        let empty = CollectionStats { num_docs: 0, avg_doc_len: 0.0 };
        assert_eq!(params().term_belief(5, 10, 1, &empty), 0.4);
    }
}

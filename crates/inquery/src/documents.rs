//! The document table: per-document metadata needed at ranking time.
//!
//! INQUERY's belief functions normalise term frequency by document length,
//! and result lists report external document identifiers, so the engine
//! keeps a memory-resident table of `(external id, length)` per document —
//! loaded at open time alongside the hash dictionary.

use crate::postings::DocId;

/// Metadata for one document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocInfo {
    /// The collection's external identifier (e.g. "CACM-1234").
    pub name: String,
    /// Document length in word tokens (before stop-word removal).
    pub len: u32,
}

/// The memory-resident document table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DocTable {
    docs: Vec<DocInfo>,
    total_len: u64,
}

impl DocTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a document, returning its ordinal id.
    pub fn push(&mut self, name: String, len: u32) -> DocId {
        let id = DocId(self.docs.len() as u32);
        self.total_len += len as u64;
        self.docs.push(DocInfo { name, len });
        id
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Metadata for `doc`.
    pub fn info(&self, doc: DocId) -> &DocInfo {
        &self.docs[doc.0 as usize]
    }

    /// Shortest document length in tokens (0 when empty). Term belief is
    /// monotone decreasing in document length, so evaluating it at the
    /// collection's shortest document yields a sound upper bound.
    pub fn min_len(&self) -> u32 {
        self.docs.iter().map(|d| d.len).min().unwrap_or(0)
    }

    /// Mean document length in tokens.
    pub fn avg_len(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.docs.len() as f64
        }
    }

    /// Total token count across the collection.
    pub fn total_tokens(&self) -> u64 {
        self.total_len
    }

    /// Serializes the table.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.docs.len() * 24);
        out.extend_from_slice(b"IQDT");
        out.extend_from_slice(&(self.docs.len() as u32).to_le_bytes());
        for d in &self.docs {
            out.extend_from_slice(&(d.name.len() as u16).to_le_bytes());
            out.extend_from_slice(d.name.as_bytes());
            out.extend_from_slice(&d.len.to_le_bytes());
        }
        out
    }

    /// Deserializes a table written by [`DocTable::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 || &bytes[0..4] != b"IQDT" {
            return None;
        }
        let count = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let mut table = DocTable::new();
        let mut pos = 8;
        for _ in 0..count {
            if pos + 2 > bytes.len() {
                return None;
            }
            let name_len = u16::from_le_bytes(bytes[pos..pos + 2].try_into().unwrap()) as usize;
            pos += 2;
            if pos + name_len + 4 > bytes.len() {
                return None;
            }
            let name = std::str::from_utf8(&bytes[pos..pos + name_len]).ok()?.to_string();
            pos += name_len;
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            pos += 4;
            table.push(name, len);
        }
        Some(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_sequential_ids() {
        let mut t = DocTable::new();
        assert_eq!(t.push("DOC-0".into(), 100), DocId(0));
        assert_eq!(t.push("DOC-1".into(), 200), DocId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.info(DocId(1)).name, "DOC-1");
        assert_eq!(t.info(DocId(0)).len, 100);
        assert_eq!(t.avg_len(), 150.0);
        assert_eq!(t.total_tokens(), 300);
    }

    #[test]
    fn empty_table() {
        let t = DocTable::new();
        assert!(t.is_empty());
        assert_eq!(t.avg_len(), 0.0);
    }

    #[test]
    fn serialization_round_trips() {
        let mut t = DocTable::new();
        for i in 0..300 {
            t.push(format!("LEGAL-{i:05}"), (i * 7) % 500 + 1);
        }
        let t2 = DocTable::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(DocTable::from_bytes(b"").is_none());
        assert!(DocTable::from_bytes(b"XXXX\x01\x00\x00\x00").is_none());
        let mut t = DocTable::new();
        t.push("doc".into(), 5);
        let bytes = t.to_bytes();
        assert!(DocTable::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }
}

//! Tokenization and stop words.
//!
//! Documents and queries pass through the same analyzer so query terms match
//! index terms. The analyzer lower-cases ASCII, splits on anything that is
//! not alphanumeric, and drops pure digits longer than a year-like token as
//! well as single characters — a simplification of INQUERY's document
//! parsing that preserves the statistical properties the paper's evaluation
//! depends on (Zipf-distributed vocabulary, stop-word removal).
//!
//! "A stop words file lists words that are not worth indexing on because
//! they occur so frequently or are not significantly meaningful."
//! (Section 4.2)

use std::collections::HashSet;

/// The default stop-word list (a standard short English list of the kind
/// shipped with IR systems of the era).
pub const DEFAULT_STOP_WORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "also", "an", "and", "any", "are", "as", "at",
    "be", "because", "been", "before", "being", "below", "between", "both", "but", "by", "can",
    "could", "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from",
    "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how",
    "i", "if", "in", "into", "is", "it", "its", "just", "more", "most", "my", "no", "nor", "not",
    "now", "of", "off", "on", "once", "only", "or", "other", "our", "out", "over", "own", "same",
    "she", "should", "so", "some", "such", "than", "that", "the", "their", "them", "then", "there",
    "these", "they", "this", "those", "through", "to", "too", "under", "until", "up", "very",
    "was", "we", "were", "what", "when", "where", "which", "while", "who", "whom", "why", "will",
    "with", "would", "you", "your",
];

/// The analysis configuration: a compiled stop-word set plus an optional
/// stemming flag. Threaded through the indexer, the query parser, and the
/// evaluator so documents and queries always normalise identically.
#[derive(Debug, Clone)]
pub struct StopWords {
    words: HashSet<String>,
    stemming: bool,
}

impl Default for StopWords {
    fn default() -> Self {
        StopWords::new(DEFAULT_STOP_WORDS.iter().copied())
    }
}

impl StopWords {
    /// Builds a stop-word set from an iterator of words.
    pub fn new<'a>(words: impl IntoIterator<Item = &'a str>) -> Self {
        StopWords {
            words: words.into_iter().map(|w| w.to_ascii_lowercase()).collect(),
            stemming: false,
        }
    }

    /// An empty set (index everything).
    pub fn none() -> Self {
        StopWords { words: HashSet::new(), stemming: false }
    }

    /// Enables Porter stemming (see [`crate::porter`]) after stop-word
    /// removal. Indexes and queries must use the same setting.
    pub fn with_stemming(mut self) -> Self {
        self.stemming = true;
        self
    }

    /// Whether stemming is enabled.
    pub fn stemming(&self) -> bool {
        self.stemming
    }

    /// Normalises one already-lower-cased word: `None` if it is a stop word
    /// or noise, the (possibly stemmed) index term otherwise.
    pub fn index_form(&self, word: &str) -> Option<String> {
        if word.len() < 2 || self.contains(word) {
            return None;
        }
        if word.chars().all(|c| c.is_ascii_digit()) && word.len() > 4 {
            return None;
        }
        Some(if self.stemming { crate::porter::stem(word) } else { word.to_string() })
    }

    /// Whether `word` (already lower-cased) is a stop word.
    pub fn contains(&self, word: &str) -> bool {
        self.words.contains(word)
    }

    /// Number of stop words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Splits `text` into lower-cased index terms, reporting each term's
/// position (token offset *after* stop-word removal is NOT applied to
/// positions — positions count all word tokens, so phrase adjacency is
/// preserved across removed stop words exactly as INQUERY records
/// "locations within each document").
pub fn tokenize<'a>(
    text: &'a str,
    stop: &'a StopWords,
) -> impl Iterator<Item = (String, u32)> + 'a {
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .enumerate()
        .filter_map(move |(pos, raw)| {
            let token = raw.to_ascii_lowercase();
            stop.index_form(&token).map(|term| (term, pos as u32))
        })
}

/// Convenience: tokenize and collect just the terms.
pub fn terms(text: &str, stop: &StopWords) -> Vec<String> {
    tokenize(text, stop).map(|(t, _)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        let stop = StopWords::none();
        let toks = terms("Hello, World! FOO-bar baz42", &stop);
        assert_eq!(toks, vec!["hello", "world", "foo", "bar", "baz42"]);
    }

    #[test]
    fn stop_words_are_dropped_but_positions_advance() {
        let stop = StopWords::default();
        let toks: Vec<(String, u32)> = tokenize("the cat sat on the mat", &stop).collect();
        assert_eq!(
            toks,
            vec![("cat".into(), 1), ("sat".into(), 2), ("mat".into(), 5)],
            "positions must count removed stop words"
        );
    }

    #[test]
    fn single_characters_and_long_numbers_are_dropped() {
        let stop = StopWords::none();
        assert_eq!(terms("a b c xy 1 12 1234 12345 123456", &stop), vec!["xy", "12", "1234"]);
    }

    #[test]
    fn default_stop_list_is_loaded() {
        let stop = StopWords::default();
        assert!(stop.contains("the"));
        assert!(stop.contains("The".to_ascii_lowercase().as_str()));
        assert!(!stop.contains("retrieval"));
        assert!(!stop.is_empty());
        assert_eq!(stop.len(), DEFAULT_STOP_WORDS.len());
    }

    #[test]
    fn custom_stop_words() {
        let stop = StopWords::new(["foo", "BAR"]);
        assert_eq!(terms("foo bar baz", &stop), vec!["baz"]);
    }

    #[test]
    fn empty_text_yields_nothing() {
        let stop = StopWords::default();
        assert!(terms("", &stop).is_empty());
        assert!(terms("...!!!", &stop).is_empty());
    }

    #[test]
    fn stemming_conflates_word_forms() {
        let stop = StopWords::default().with_stemming();
        assert!(stop.stemming());
        let toks = terms("indexing indexes index", &stop);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], toks[1]);
        assert_eq!(toks[1], toks[2]);
        // Stop words are removed before stemming.
        assert!(terms("the they them", &stop).is_empty());
        // Positions still track the raw token stream.
        let with_pos: Vec<(String, u32)> =
            tokenize("the retrieval of stored records", &stop).collect();
        assert_eq!(with_pos.len(), 3);
        assert_eq!(with_pos[0].1, 1);
        assert_eq!(with_pos[1].1, 3);
    }

    #[test]
    fn index_form_matches_tokenize() {
        let stop = StopWords::default().with_stemming();
        assert_eq!(stop.index_form("retrieval"), Some("retriev".into()));
        assert_eq!(stop.index_form("the"), None);
        assert_eq!(stop.index_form("x"), None);
        assert_eq!(stop.index_form("123456"), None);
        assert_eq!(stop.index_form("1234"), Some("1234".into()));
    }
}

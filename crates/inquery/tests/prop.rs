//! Property tests for the IR engine: codec round-trips, parser robustness,
//! belief-combination invariants, and ranking determinism.

use std::sync::Arc;

use proptest::prelude::*;

use poir_inquery::{
    codec, parse_query, porter, BeliefParams, BlockCache, BlockCursor, DocId, Evaluator,
    IndexBuilder, InvertedRecord, MemoryStore, Posting, QueryNode, StopWords, BLOCK_SIZE,
};

fn posting_strategy() -> impl Strategy<Value = Vec<Posting>> {
    // Ascending doc ids with 1..=4 ascending positions each.
    postings_with(proptest::collection::btree_set(0u32..100_000, 0..60))
}

/// Like [`posting_strategy`] but always past [`BLOCK_SIZE`] documents, so
/// every record gets the blocked layout with a multi-entry skip directory.
fn blocked_posting_strategy() -> impl Strategy<Value = Vec<Posting>> {
    let span = BLOCK_SIZE as usize;
    postings_with(proptest::collection::btree_set(0u32..100_000, span + 1..4 * span))
}

fn postings_with(
    docs: impl Strategy<Value = std::collections::BTreeSet<u32>>,
) -> impl Strategy<Value = Vec<Posting>> {
    docs.prop_flat_map(|docs| {
        let docs: Vec<u32> = docs.into_iter().collect();
        proptest::collection::vec(proptest::collection::btree_set(0u32..10_000, 1..5), docs.len())
            .prop_map(move |pos_sets| {
                docs.iter()
                    .zip(pos_sets)
                    .map(|(&doc, positions)| {
                        let positions: Vec<u32> = positions.into_iter().collect();
                        Posting { doc: DocId(doc), tf: positions.len() as u32, positions }
                    })
                    .collect()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inverted_records_round_trip(postings in posting_strategy()) {
        let record = InvertedRecord::from_postings(postings);
        let bytes = record.encode();
        prop_assert_eq!(InvertedRecord::decode(&bytes), Some(record.clone()));
        // Header-only decode agrees — cf at full width, never truncated.
        let (df, cf, max_tf) = InvertedRecord::decode_header(&bytes).unwrap();
        prop_assert_eq!(df, record.df());
        prop_assert_eq!(cf, record.cf);
        prop_assert_eq!(max_tf, record.max_tf);
    }

    #[test]
    fn blocked_records_round_trip(postings in blocked_posting_strategy()) {
        let record = InvertedRecord::from_postings(postings.clone());
        let bytes = record.encode();
        prop_assert_eq!(InvertedRecord::decode(&bytes), Some(record.clone()));
        let (mut cur, df, _cf, max_tf) = BlockCursor::open(&bytes).unwrap();
        prop_assert_eq!(df as usize, postings.len());
        prop_assert_eq!(max_tf, record.max_tf);
        prop_assert_eq!(cur.blocks().len(), postings.len().div_ceil(BLOCK_SIZE as usize));
        // The skip directory spans exactly the encoded record.
        prop_assert_eq!(cur.total_len(), Some(bytes.len()));
        let mut streamed = Vec::new();
        while let Some(p) = cur.next(&bytes) {
            streamed.push(p);
        }
        prop_assert_eq!(streamed, postings);
    }

    #[test]
    fn cursor_seek_agrees_with_linear_scan(
        postings in blocked_posting_strategy(),
        target in 0u32..120_000,
    ) {
        let bytes = InvertedRecord::from_postings(postings.clone()).encode();
        let (mut cur, df, _, _) = BlockCursor::open(&bytes).unwrap();
        let summary = cur.seek(target);
        // Seeking is block-granular: it may leave the cursor before
        // `target`, but must never jump past a qualifying posting. The
        // postings at or after `target` match a pure linear scan exactly.
        let mut decoded = 0u64;
        let mut seeked = Vec::new();
        while let Some((d, tf)) = cur.next_doc_tf(&bytes) {
            decoded += 1;
            if d.0 >= target {
                seeked.push((d.0, tf));
            }
        }
        let expected: Vec<(u32, u32)> =
            postings.iter().filter(|p| p.doc.0 >= target).map(|p| (p.doc.0, p.tf)).collect();
        prop_assert_eq!(seeked, expected);
        // Every posting is either bypassed by the seek or decoded after it.
        prop_assert_eq!(decoded + summary.postings_skipped, df as u64);
        prop_assert!(summary.blocks_skipped as usize <= postings.len().div_ceil(BLOCK_SIZE as usize));
    }

    #[test]
    fn bit_packing_agrees_with_vbyte(values in proptest::collection::vec(any::<u32>(), 1..300)) {
        // Reference path: the v1 vbyte codec.
        let mut vb = Vec::new();
        for &v in &values {
            codec::encode_vbyte(v, &mut vb);
        }
        let mut pos = 0usize;
        let mut via_vbyte = Vec::with_capacity(values.len());
        for _ in 0..values.len() {
            via_vbyte.push(codec::decode_vbyte(&vb, &mut pos).unwrap());
        }
        // Packed path at the tightest width covering the batch.
        let width = values.iter().copied().map(codec::bit_width).max().unwrap();
        let mut packed = Vec::new();
        codec::pack_bits(&values, width, &mut packed);
        prop_assert_eq!(packed.len(), codec::packed_len(values.len(), width));
        let mut unpacked = Vec::new();
        prop_assert!(codec::unpack_bits(&packed, values.len(), width, &mut unpacked).is_some());
        prop_assert_eq!(unpacked, via_vbyte);
    }

    #[test]
    fn packed_blocks_round_trip_extreme_gap_and_tf_distributions(
        pairs in proptest::collection::vec(
            (1u32..16_000_000, 1u32..40),
            BLOCK_SIZE as usize + 1..2 * BLOCK_SIZE as usize,
        ),
    ) {
        // Doc gaps up to 2^24 and tfs up to 40 drive the per-block widths
        // across their whole range; every record here is long enough to
        // take the v2 bit-packed layout.
        let mut doc = 0u32;
        let postings: Vec<Posting> = pairs
            .into_iter()
            .map(|(gap, tf)| {
                doc += gap;
                Posting { doc: DocId(doc), tf, positions: (0..tf).collect() }
            })
            .collect();
        let record = InvertedRecord::from_postings(postings.clone());
        let bytes = record.encode();
        prop_assert_eq!(InvertedRecord::decode(&bytes), Some(record));
        let (mut cur, df, _, _) = BlockCursor::open(&bytes).unwrap();
        prop_assert_eq!(df as usize, postings.len());
        let mut streamed = Vec::new();
        while let Some(p) = cur.next(&bytes) {
            streamed.push(p);
        }
        prop_assert_eq!(streamed, postings);
        prop_assert!(cur.blocks_bitpacked() > 0, "long records must use packed blocks");
    }

    #[test]
    fn block_cache_hits_are_bit_identical_to_fresh_decodes(
        pairs in proptest::collection::vec(
            (1u32..16_000_000, 1u32..40),
            BLOCK_SIZE as usize + 1..3 * BLOCK_SIZE as usize,
        ),
    ) {
        // Arbitrary gap/tf distributions sweep the packed widths; the
        // cached decode must reproduce the uncached stream bit for bit.
        let mut doc = 0u32;
        let postings: Vec<Posting> = pairs
            .into_iter()
            .map(|(gap, tf)| {
                doc += gap;
                Posting { doc: DocId(doc), tf, positions: (0..tf).collect() }
            })
            .collect();
        let bytes = InvertedRecord::from_postings(postings).encode();
        let stream = |cur: &mut BlockCursor| {
            let mut out = Vec::new();
            while let Some((d, tf)) = cur.next_doc_tf(&bytes) {
                out.push((d.0, tf));
            }
            out
        };
        let (mut plain, ..) = BlockCursor::open(&bytes).unwrap();
        let fresh = stream(&mut plain);
        let cache = Arc::new(BlockCache::new(1 << 20));
        // Pass 1 records ghosts, pass 2 admits, pass 3 is served from
        // cache — every pass must agree with the uncached decode.
        for pass in 0..3 {
            let (mut cur, ..) = BlockCursor::open(&bytes).unwrap();
            cur.attach_cache(Arc::clone(&cache), 7, 42);
            prop_assert_eq!(stream(&mut cur), fresh.clone(), "pass {}", pass);
            if pass == 2 {
                prop_assert!(cur.cache_hits() > 0, "third pass must hit");
                prop_assert_eq!(cur.cache_hits() + cur.cache_misses(), plain.blocks_bitpacked());
            }
        }
        prop_assert!(cache.stats().hits > 0);
        // Full-posting decode (positions included) also agrees on a hit.
        let (mut via_cache, ..) = BlockCursor::open(&bytes).unwrap();
        via_cache.attach_cache(Arc::clone(&cache), 7, 42);
        let (mut uncached, ..) = BlockCursor::open(&bytes).unwrap();
        while let Some(p) = uncached.next(&bytes) {
            prop_assert_eq!(via_cache.next(&bytes), Some(p));
        }
        prop_assert_eq!(via_cache.next(&bytes), None);
    }

    #[test]
    fn block_cache_byte_bound_is_never_exceeded(
        offers in proptest::collection::vec((0u64..40, 0u32..6, 1usize..=128), 50..400),
        capacity_kib in 8usize..64,
    ) {
        let capacity = capacity_kib * 1024;
        let cache = Arc::new(BlockCache::new(capacity));
        for (object, block, n) in offers {
            let key = poir_inquery::BlockKey { epoch: 1, object, block };
            let make = || {
                Arc::new(poir_inquery::DecodedBlock {
                    docs: (0..n as u32).collect(),
                    tfs: vec![1; n],
                })
            };
            cache.offer_with(key, make);
            cache.offer_with(key, make); // force past the ghost filter
            let stats = cache.stats();
            prop_assert!(
                stats.bytes <= cache.capacity(),
                "{} resident bytes exceed the {} bound",
                stats.bytes,
                cache.capacity()
            );
        }
        let stats = cache.stats();
        prop_assert!(stats.admits > 0);
        prop_assert_eq!(stats.capacity, cache.capacity());
    }

    #[test]
    fn corrupt_skip_directories_never_panic(
        postings in blocked_posting_strategy(),
        mutations in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8),
        cut in any::<usize>(),
    ) {
        let bytes = InvertedRecord::from_postings(postings).encode();
        // Truncation: decode must reject, cursors must stop cleanly.
        let truncated = &bytes[..cut % bytes.len()];
        let _ = InvertedRecord::decode(truncated);
        if let Some((mut cur, _, _, _)) = BlockCursor::open(truncated) {
            cur.seek(50_000);
            while cur.next_doc_tf(truncated).is_some() {}
        }
        // Arbitrary byte flips anywhere (header, directory, body).
        let mut mutated = bytes.clone();
        for (pos, val) in &mutations {
            let at = pos % mutated.len();
            mutated[at] ^= val;
        }
        let _ = InvertedRecord::decode(&mutated);
        if let Some((mut cur, _, _, _)) = BlockCursor::open(&mutated) {
            cur.seek(1_000);
            while cur.next_doc_tf(&mutated).is_some() {}
        }
        // Corruption pinned into the header + skip directory region, where
        // the v2 bit-width fields live: oversized widths (0xFF) must be
        // rejected, never trusted into an out-of-bounds unpack.
        let mut bad_widths = bytes.clone();
        let dir_region = bad_widths.len().min(100);
        for (pos, _) in &mutations {
            bad_widths[pos % dir_region] = 0xFF;
        }
        let _ = InvertedRecord::decode(&bad_widths);
        if let Some((mut cur, _, _, _)) = BlockCursor::open(&bad_widths) {
            cur.seek(50_000);
            while cur.next_doc_tf(&bad_widths).is_some() {}
        }
    }

    #[test]
    fn record_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = InvertedRecord::decode(&bytes); // may be None, must not panic
        let _ = InvertedRecord::decode_header(&bytes);
    }

    #[test]
    fn parser_never_panics(input in "[ -~]{0,120}") {
        let stop = StopWords::default();
        let _ = parse_query(&input, &stop); // Ok or Err, never a panic
    }

    #[test]
    fn parser_accepts_generated_well_formed_queries(
        words in proptest::collection::vec("[a-z]{3,8}", 1..8),
        op in 0usize..4,
    ) {
        let stop = StopWords::none();
        let body = words.join(" ");
        let query = match op {
            0 => body.clone(),
            1 => format!("#and({body})"),
            2 => format!("#or({body})"),
            _ => format!("#max({body})"),
        };
        let parsed = parse_query(&query, &stop).unwrap();
        let mut leaves = parsed.leaf_terms();
        leaves.sort_unstable();
        leaves.dedup();
        let mut expected: Vec<&str> = words.iter().map(String::as_str).collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(leaves, expected);
    }

    #[test]
    fn belief_combinators_obey_bounds(
        beliefs in proptest::collection::vec(0.0f64..=1.0, 1..6),
        weights in proptest::collection::vec(0.01f64..10.0, 6),
    ) {
        let min = beliefs.iter().copied().fold(1.0, f64::min);
        let max = beliefs.iter().copied().fold(0.0, f64::max);
        let and = BeliefParams::and(beliefs.iter().copied());
        let or = BeliefParams::or(beliefs.iter().copied());
        let sum = BeliefParams::sum(&beliefs);
        let weighted: Vec<(f64, f64)> =
            weights.iter().copied().zip(beliefs.iter().copied()).collect();
        let wsum = BeliefParams::wsum(&weighted);
        prop_assert!(and <= min + 1e-12, "#and must not exceed its weakest child");
        prop_assert!(or >= max - 1e-12, "#or must dominate its strongest child");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&and));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&or));
        prop_assert!(sum >= min - 1e-12 && sum <= max + 1e-12, "mean stays inside the hull");
        prop_assert!(wsum >= min - 1e-12 && wsum <= max + 1e-12);
        prop_assert_eq!(BeliefParams::max(beliefs.iter().copied()), max);
    }

    #[test]
    fn term_beliefs_are_probabilities(
        tf in 0u32..10_000,
        doc_len in 1u32..100_000,
        df in 0u32..5_000,
        num_docs in 1u32..5_000,
    ) {
        let stats = poir_inquery::CollectionStats {
            num_docs,
            avg_doc_len: 120.0,
        };
        let b = BeliefParams::default().term_belief(tf, doc_len, df.min(num_docs), &stats);
        prop_assert!((0.0..=1.0).contains(&b), "belief {b}");
        if tf > 0 && df > 0 && df.min(num_docs) < num_docs {
            prop_assert!(b >= 0.4, "present terms never score below the default");
        }
    }

    #[test]
    fn ranking_is_sorted_and_deterministic(
        docs in proptest::collection::vec("[a-z]{3,6}( [a-z]{3,6}){2,10}", 2..12),
        query_words in proptest::collection::vec("[a-z]{3,6}", 1..4),
    ) {
        let stop = StopWords::none();
        let mut builder = IndexBuilder::new(stop.clone());
        for (i, text) in docs.iter().enumerate() {
            builder.add_document(&format!("D{i}"), text);
        }
        let idx = builder.finish();
        let mut store = MemoryStore::new();
        let mut dict = idx.dictionary;
        for (term, bytes) in idx.records {
            let r = store.add(bytes);
            dict.entry_mut(term).store_ref = r;
        }
        let query = QueryNode::Sum(
            query_words.iter().map(|w| QueryNode::Term(w.clone())).collect(),
        );
        let run = |store: &mut MemoryStore| {
            let mut ev = Evaluator::new(store, &dict, &idx.documents, &stop, BeliefParams::default());
            ev.rank(&query, 100).unwrap()
        };
        let a = run(&mut store);
        let b = run(&mut store);
        prop_assert_eq!(&a, &b, "ranking must be deterministic");
        for w in a.windows(2) {
            prop_assert!(
                w[0].score > w[1].score
                    || (w[0].score == w[1].score && w[0].doc < w[1].doc),
                "descending score with doc-id tie-break"
            );
        }
        for s in &a {
            prop_assert!((0.0..=1.0).contains(&s.score));
        }
    }

    #[test]
    fn stemmer_never_panics_and_stays_ascii(word in "[a-z]{0,30}") {
        let stemmed = porter::stem(&word);
        prop_assert!(stemmed.len() <= word.len().max(1) + 1);
        prop_assert!(stemmed.bytes().all(|b| b.is_ascii_lowercase()) || stemmed.is_empty());
    }

    #[test]
    fn stemmed_and_unstemmed_indexes_agree_on_exact_words(
        words in proptest::collection::vec("[a-z]{4,9}", 3..10),
    ) {
        // Any document word, queried in its exact surface form, must be
        // findable under both analyzers (stemming maps query and document
        // occurrences identically).
        for stop in [StopWords::none(), StopWords::none().with_stemming()] {
            let mut builder = IndexBuilder::new(stop.clone());
            builder.add_document("D0", &words.join(" "));
            let idx = builder.finish();
            for w in &words {
                if let Some(term) = stop.index_form(w) {
                    prop_assert!(
                        idx.dictionary.lookup(&term).is_some(),
                        "word {w} (term {term}) missing under stemming={}",
                        stop.stemming()
                    );
                }
            }
        }
    }
}

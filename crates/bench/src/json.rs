//! Minimal JSON reader for the benchmark baselines.
//!
//! The workspace is dependency-free by policy, so the `regress` gate parses
//! `BENCH_throughput.json` with this small recursive-descent parser instead
//! of serde. It handles the full JSON grammar the harness emits (objects,
//! arrays, strings with `\uXXXX` escapes, numbers, booleans, null) and
//! nothing more exotic.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Member of an object by key, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value truncated to u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Unpaired surrogates degrade to the replacement
                            // character; the harness never emits them.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a run of plain bytes (UTF-8 passes through intact).
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let v = Json::parse(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn roundtrips_the_throughput_schema() {
        let doc = r#"{
          "collection": "TIPSTER",
          "modes": [
            {"mode": "serial", "threads": 1, "qps": 10.984,
             "accesses_per_lookup": 0.9315, "io_inputs": 513}
          ]
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("collection").unwrap().as_str(), Some("TIPSTER"));
        let m = &v.get("modes").unwrap().as_arr().unwrap()[0];
        assert_eq!(m.get("mode").unwrap().as_str(), Some("serial"));
        assert_eq!(m.get("io_inputs").unwrap().as_u64(), Some(513));
        assert!((m.get("qps").unwrap().as_f64().unwrap() - 10.984).abs() < 1e-9);
    }

    #[test]
    fn string_escapes_and_unicode() {
        let v = Json::parse(r#""tab\there A""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("nul").is_err());
    }
}

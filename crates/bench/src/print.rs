//! Rendering of the reproduction results in the paper's table layouts.

use std::fmt::Write as _;

use crate::{CollectionResults, QuerySetResults};

/// Table 1: document collection statistics.
pub fn table1(results: &[CollectionResults]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: Document collection statistics. All sizes are in Kbytes.");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>15} {:>12} {:>12} {:>12}",
        "Collection", "Documents", "Coll. Size", "# Records", "B-Tree Size", "Mneme Size"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>15} {:>12} {:>12} {:>12}",
            r.label,
            r.num_docs,
            r.collection_kbytes,
            r.record_count,
            r.btree_kbytes,
            r.mneme_kbytes
        );
    }
    out
}

/// Table 2: Mneme buffer sizes per collection.
pub fn table2(results: &[CollectionResults]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: Mneme buffer sizes. All sizes are in Kbytes.");
    let _ = writeln!(out, "{:<12} {:>10} {:>10} {:>12}", "Collection", "Small", "Medium", "Large");
    for r in results {
        let _ = writeln!(
            out,
            "{:<12} {:>10.1} {:>10.1} {:>12.1}",
            r.label,
            r.buffer_sizes.small as f64 / 1024.0,
            r.buffer_sizes.medium as f64 / 1024.0,
            r.buffer_sizes.large as f64 / 1024.0
        );
    }
    out
}

fn improvement(btree: f64, cache: f64) -> f64 {
    if btree <= 0.0 {
        0.0
    } else {
        100.0 * (btree - cache) / btree
    }
}

fn time_table(
    results: &[CollectionResults],
    title: &str,
    f: impl Fn(&QuerySetResults, usize) -> f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>16} {:>14} {:>12}",
        "Query Set", "B-Tree", "Mneme, No Cache", "Mneme, Cache", "Improvement"
    );
    for r in results {
        for qs in &r.query_sets {
            let (b, n, c) = (f(qs, 0), f(qs, 1), f(qs, 2));
            let _ = writeln!(
                out,
                "{:<14} {:>10.2} {:>16.2} {:>14.2} {:>11.0}%",
                qs.label,
                b,
                n,
                c,
                improvement(b, c)
            );
        }
    }
    out
}

/// Table 3: wall-clock times (engine time + simulated system/I-O time).
pub fn table3(results: &[CollectionResults]) -> String {
    time_table(
        results,
        "Table 3: Wall-clock times. All times are in seconds (simulated platform).",
        |qs, i| qs.reports[i].wall_clock_secs(),
    )
}

/// Table 4: system CPU plus I/O times.
pub fn table4(results: &[CollectionResults]) -> String {
    time_table(
        results,
        "Table 4: System CPU plus I/O times. All times are in seconds (simulated platform).",
        |qs, i| qs.reports[i].sys_io_time.as_secs_f64(),
    )
}

/// Table 5: I/O statistics (I = 8 KB disk inputs, A = file accesses per
/// record lookup, B = Kbytes read).
pub fn table5(results: &[CollectionResults]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 5: I/O statistics. I = I/O inputs, A = ave. file accesses / record lookup,"
    );
    let _ = writeln!(out, "B = total Kbytes read from file.");
    let _ = writeln!(
        out,
        "{:<14} | {:>8} {:>6} {:>9} | {:>8} {:>6} {:>9} | {:>8} {:>6} {:>9}",
        "", "I", "A", "B", "I", "A", "B", "I", "A", "B"
    );
    let _ = writeln!(
        out,
        "{:<14} | {:^25} | {:^25} | {:^25}",
        "Query Set", "B-Tree", "Mneme, No Cache", "Mneme, Cache"
    );
    for r in results {
        for qs in &r.query_sets {
            let row = |i: usize| -> (u64, f64, u64) {
                (
                    qs.reports[i].io_inputs(),
                    qs.reports[i].accesses_per_lookup(),
                    qs.reports[i].kbytes_read(),
                )
            };
            let (i0, a0, b0) = row(0);
            let (i1, a1, b1) = row(1);
            let (i2, a2, b2) = row(2);
            let _ = writeln!(
                out,
                "{:<14} | {:>8} {:>6.2} {:>9} | {:>8} {:>6.2} {:>9} | {:>8} {:>6.2} {:>9}",
                qs.label, i0, a0, b0, i1, a1, b1, i2, a2, b2
            );
        }
    }
    out
}

/// Table 6: buffer hit rates for the cached configuration.
pub fn table6(results: &[CollectionResults]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 6: Buffer hit rates for the query sets (Mneme, Cache).");
    let _ = writeln!(
        out,
        "{:<14} | {:>7} {:>6} {:>6} | {:>7} {:>6} {:>6} | {:>7} {:>6} {:>6}",
        "", "Refs", "Hits", "Rate", "Refs", "Hits", "Rate", "Refs", "Hits", "Rate"
    );
    let _ = writeln!(
        out,
        "{:<14} | {:^21} | {:^21} | {:^21}",
        "Query Set", "Small Buffer", "Medium Buffer", "Large Buffer"
    );
    for r in results {
        for qs in &r.query_sets {
            let stats = qs.reports[2].buffer_stats.expect("cached run has stats");
            let _ = write!(out, "{:<14}", qs.label);
            for s in stats {
                let _ = write!(out, " | {:>7} {:>6} {:>6.2}", s.refs, s.hits, s.hit_rate());
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Effectiveness summary (not a numbered paper table — the paper holds
/// effectiveness fixed; reported here to document that the query sets
/// retrieve their relevant documents).
pub fn effectiveness(results: &[CollectionResults]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Effectiveness (identical across storage configurations):");
    let _ = writeln!(out, "{:<14} {:>22}", "Query Set", "Mean Avg. Precision");
    for r in results {
        for qs in &r.query_sets {
            let _ = writeln!(out, "{:<14} {:>22.3}", qs.label, qs.mean_avg_precision);
        }
    }
    out
}

/// Figure 1: cumulative distribution of inverted-list sizes.
pub fn fig1(label: &str, points: &[(usize, f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1: Cumulative distribution of inverted list sizes for the {label} collection."
    );
    let _ = writeln!(out, "{:>12} {:>14} {:>16}", "Size (bytes)", "% of Records", "% of File Size");
    for &(size, rec, bytes) in points {
        let _ = writeln!(out, "{:>12} {:>14.1} {:>16.1}", size, rec, bytes);
    }
    out
}

/// Figure 2: frequency of use vs. record size (bucketed by powers of two).
pub fn fig2(label: &str, points: &[(usize, u32)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2: Frequency of use of inverted list record sizes, {label}.");
    let _ = writeln!(
        out,
        "{:>16} {:>14} {:>12} {:>14}",
        "Size bucket (B)", "Terms used", "Total uses", "Mean uses/term"
    );
    let mut bucket = 1usize;
    let mut idx = 0usize;
    while idx < points.len() {
        let end = bucket * 2;
        let slice: Vec<&(usize, u32)> = points[idx..].iter().take_while(|p| p.0 < end).collect();
        if !slice.is_empty() {
            let terms = slice.len();
            let uses: u32 = slice.iter().map(|p| p.1).sum();
            let _ = writeln!(
                out,
                "{:>7}..{:<7} {:>14} {:>12} {:>14.2}",
                bucket,
                end - 1,
                terms,
                uses,
                uses as f64 / terms as f64
            );
            idx += terms;
        }
        bucket = end;
    }
    out
}

/// Figure 3: large-object buffer hit rate vs. buffer size.
pub fn fig3(label: &str, sweep: &[(usize, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3: Large object buffer hit rates for {label} over different buffer sizes."
    );
    let _ = writeln!(out, "{:>18} {:>10}", "Buffer (Mbytes)", "Hit Rate");
    for &(bytes, rate) in sweep {
        let _ = writeln!(out, "{:>18.2} {:>10.3}", bytes as f64 / 1e6, rate);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_percentages() {
        assert_eq!(improvement(10.0, 5.0), 50.0);
        assert_eq!(improvement(0.0, 5.0), 0.0);
        assert!(improvement(6.49, 5.93) > 8.0 && improvement(6.49, 5.93) < 9.0);
    }

    #[test]
    fn fig1_rendering_contains_points() {
        let s = fig1("Legal", &[(1, 10.0, 0.1), (1024, 90.0, 20.0)]);
        assert!(s.contains("Legal"));
        assert!(s.contains("1024"));
    }

    #[test]
    fn fig2_buckets_by_powers_of_two() {
        let s = fig2("Legal QS2", &[(3, 1), (5, 2), (100, 4)]);
        assert!(s.contains("Legal QS2"));
        assert!(s.contains("2..3") || s.contains("4..7"));
        assert!(s.contains("64..127"));
    }

    #[test]
    fn fig3_prints_megabytes() {
        let s = fig3("TIPSTER QS1", &[(5_000_000, 0.42)]);
        assert!(s.contains("5.00"));
        assert!(s.contains("0.420"));
    }
}

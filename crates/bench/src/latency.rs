//! Sustained-load latency harness for the sharded query service.
//!
//! Closed-loop load generation: `clients` threads each keep exactly one
//! request in flight against a [`QueryService`], drawing query texts
//! round-robin from the workload's set until the level's query budget is
//! spent. Each level reports completed/rejected counts, throughput, and
//! the p50/p95/p99 latency of successful requests, all in **host** time
//! (submission to response, queue wait included) — unlike the QPS family,
//! which runs on simulated wall-clock, this family measures the real
//! concurrency behaviour of the admission queue and worker pool.
//!
//! The level ladder deliberately crosses the queue capacity: with the
//! default 32-slot queue, the 64-client level keeps more requests waiting
//! than the queue admits, so the rejection counters exercise the
//! [`Overloaded`](poir_core::CoreError::Overloaded) path under real load.
//!
//! The `loadgen` binary prints the ladder and emits the JSON family the
//! `regress` gate compares (one-sided; see `regress`'s docs for why
//! host-time figures get a generous tolerance).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use poir_core::{
    BackendKind, CoreError, Engine, QueryRequest, QueryService, ShardSpec, TelemetryOptions,
};

use crate::paper_device;
use crate::throughput::{Workload, TOP_K};

/// Default concurrency ladder; crosses [`DEFAULT_QUEUE_CAPACITY`] at the
/// top so rejections appear.
pub const DEFAULT_LEVELS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Default admission-queue capacity.
pub const DEFAULT_QUEUE_CAPACITY: usize = 32;

/// Default sharding layout for the committed baseline: 4 shards, 4
/// workers.
pub const DEFAULT_SHARDS: usize = 4;

/// Default queries per concurrency level.
pub const DEFAULT_QUERIES_PER_LEVEL: usize = 200;

/// One concurrency level's measurements.
pub struct LatencyLevel {
    /// Closed-loop client threads.
    pub clients: usize,
    /// Requests that completed with a ranking.
    pub completed: usize,
    /// Requests rejected at admission ([`CoreError::Overloaded`]).
    pub rejected: usize,
    /// Completed requests per host second.
    pub qps: f64,
    /// Median submit-to-response latency, microseconds.
    pub p50_micros: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_micros: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_micros: u64,
}

/// A complete load-generation run: the concurrency ladder plus its
/// headline figures.
pub struct LatencyRun {
    /// Shards the service ran.
    pub shards: usize,
    /// Worker threads in the service pool.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Query budget per level.
    pub queries_per_level: usize,
    /// The ladder, in ascending client order.
    pub levels: Vec<LatencyLevel>,
    /// Throughput of the single-client level (serial replay through the
    /// service).
    pub serial_qps: f64,
    /// Best throughput across the ladder.
    pub saturation_qps: f64,
    /// `saturation_qps / serial_qps` — the scale-free speedup the regress
    /// gate holds at ≥ 1.
    pub saturation_over_serial: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the closed-loop ladder against a fresh sharded service.
///
/// One service instance serves every level (its buffer state stays warm
/// across the ladder, like a long-running server's would); each level
/// spends `queries_per_level` submissions. A rejected submission counts
/// against the level's budget and is not retried — the client moves on,
/// as a load-shedding caller would.
pub fn run_latency(
    workload: &Workload,
    spec: ShardSpec,
    queue_capacity: usize,
    levels: &[usize],
    queries_per_level: usize,
) -> LatencyRun {
    let device = paper_device();
    let engine = Engine::builder(&device)
        .backend(BackendKind::MnemeCache)
        .telemetry(TelemetryOptions::off())
        .sharding(spec)
        .build_sharded(workload.index.clone())
        .expect("sharded engine build");
    let service = QueryService::start(engine, queue_capacity).expect("service start");
    let mut out = Vec::with_capacity(levels.len());
    for &clients in levels {
        let clients = clients.max(1);
        let next = AtomicUsize::new(0);
        let start = Instant::now();
        let per_client: Vec<(Vec<u64>, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    scope.spawn(|| {
                        let mut latencies = Vec::new();
                        let mut rejected = 0usize;
                        loop {
                            let qi = next.fetch_add(1, Ordering::Relaxed);
                            if qi >= queries_per_level {
                                break;
                            }
                            let text = &workload.queries[qi % workload.queries.len()];
                            let t = Instant::now();
                            match service.query(QueryRequest::new(text.clone(), TOP_K)) {
                                Ok(_) => latencies.push(t.elapsed().as_micros() as u64),
                                Err(CoreError::Overloaded { .. }) => {
                                    rejected += 1;
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("loadgen query failed: {e}"),
                            }
                        }
                        (latencies, rejected)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
        });
        let wall = start.elapsed().as_secs_f64();
        let mut latencies: Vec<u64> =
            per_client.iter().flat_map(|(l, _)| l.iter().copied()).collect();
        let rejected: usize = per_client.iter().map(|(_, r)| r).sum();
        latencies.sort_unstable();
        let completed = latencies.len();
        out.push(LatencyLevel {
            clients,
            completed,
            rejected,
            qps: if wall > 0.0 { completed as f64 / wall } else { 0.0 },
            p50_micros: percentile(&latencies, 50.0),
            p95_micros: percentile(&latencies, 95.0),
            p99_micros: percentile(&latencies, 99.0),
        });
    }
    service.shutdown();
    let serial_qps = out.iter().find(|l| l.clients == 1).map_or(0.0, |l| l.qps);
    let saturation_qps = out.iter().map(|l| l.qps).fold(0.0, f64::max);
    LatencyRun {
        shards: spec.shards,
        workers: spec.workers,
        queue_capacity,
        queries_per_level,
        levels: out,
        serial_qps,
        saturation_qps,
        saturation_over_serial: if serial_qps > 0.0 { saturation_qps / serial_qps } else { 0.0 },
    }
}

impl LatencyRun {
    /// The `"latency"` member of `BENCH_throughput.json`, indented two
    /// spaces to sit inside the top-level object.
    pub fn to_json(&self) -> String {
        let levels: Vec<String> = self
            .levels
            .iter()
            .map(|l| {
                format!(
                    concat!(
                        "      {{\n",
                        "        \"clients\": {},\n",
                        "        \"completed\": {},\n",
                        "        \"rejected\": {},\n",
                        "        \"qps\": {:.3},\n",
                        "        \"p50_micros\": {},\n",
                        "        \"p95_micros\": {},\n",
                        "        \"p99_micros\": {}\n",
                        "      }}"
                    ),
                    l.clients,
                    l.completed,
                    l.rejected,
                    l.qps,
                    l.p50_micros,
                    l.p95_micros,
                    l.p99_micros,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "    \"shards\": {},\n",
                "    \"workers\": {},\n",
                "    \"queue_capacity\": {},\n",
                "    \"queries_per_level\": {},\n",
                "    \"top_k\": {},\n",
                "    \"serial_qps\": {:.3},\n",
                "    \"saturation_qps\": {:.3},\n",
                "    \"saturation_over_serial\": {:.3},\n",
                "    \"levels\": [\n{}\n    ]\n",
                "  }}"
            ),
            self.shards,
            self.workers,
            self.queue_capacity,
            self.queries_per_level,
            TOP_K,
            self.serial_qps,
            self.saturation_qps,
            self.saturation_over_serial,
            levels.join(",\n"),
        )
    }

    /// Renders the human-readable ladder the `loadgen` binary prints.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<8} {:>10} {:>9} {:>12} {:>10} {:>10} {:>10}\n",
            "clients", "completed", "rejected", "QPS", "p50(us)", "p95(us)", "p99(us)"
        );
        for l in &self.levels {
            out.push_str(&format!(
                "{:<8} {:>10} {:>9} {:>12.1} {:>10} {:>10} {:>10}\n",
                l.clients, l.completed, l.rejected, l.qps, l.p50_micros, l.p95_micros, l.p99_micros,
            ));
        }
        out.push_str(&format!(
            "serial {:.1} QPS, saturation {:.1} QPS ({:.2}x) on {} shards / {} workers, \
             queue capacity {}",
            self.serial_qps,
            self.saturation_qps,
            self.saturation_over_serial,
            self.shards,
            self.workers,
            self.queue_capacity,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
    }

    #[test]
    fn tiny_ladder_completes_and_scales_counts() {
        let workload = crate::throughput::prepare_workload(0.02);
        let run = run_latency(&workload, ShardSpec::new(2, 2), 8, &[1, 4], 12);
        assert_eq!(run.levels.len(), 2);
        for l in &run.levels {
            // Closed-loop clients never outnumber the queue here, so no
            // rejections; every submission completes.
            assert_eq!(l.completed, 12);
            assert_eq!(l.rejected, 0);
            assert!(l.qps > 0.0);
            assert!(l.p50_micros <= l.p95_micros && l.p95_micros <= l.p99_micros);
        }
        assert!(run.serial_qps > 0.0);
        assert!(run.saturation_qps >= run.serial_qps);
        let json = run.to_json();
        let doc = crate::json::Json::parse(&json).expect("latency json parses");
        assert_eq!(doc.get("shards").and_then(crate::json::Json::as_u64), Some(2));
        assert_eq!(doc.get("levels").and_then(crate::json::Json::as_arr).unwrap().len(), 2);
    }
}

//! Sustained-load latency harness for the sharded query service.
//!
//! Closed-loop load generation: `clients` threads each keep exactly one
//! request in flight against a [`QueryService`], drawing query texts
//! round-robin from the workload's set until the level's query budget is
//! spent. Each level reports completed/rejected counts, throughput, and
//! the p50/p95/p99 latency of successful requests, all in **host** time
//! (submission to response, queue wait included) — unlike the QPS family,
//! which runs on simulated wall-clock, this family measures the real
//! concurrency behaviour of the admission queue and worker pool.
//!
//! The level ladder deliberately crosses the queue capacity: with the
//! default 32-slot queue, the 64-client level keeps more requests waiting
//! than the queue admits, so the rejection counters exercise the
//! [`Overloaded`](poir_core::CoreError::Overloaded) path under real load.
//!
//! Since PR 8 the harness also asserts on the **server's own metrics**:
//! every level diffs [`poir_core::QueryService::stats`] around its
//! window, so the
//! run carries a server-reported QPS next to the client-side measurement
//! (the regress gate holds them within 15% of each other), plus the
//! final [`ServiceStats`] snapshot (p99 attribution included) and the
//! slow-query flight-recorder dump.
//!
//! The `loadgen` binary prints the ladder and emits the JSON family the
//! `regress` gate compares (one-sided; see `regress`'s docs for why
//! host-time figures get a generous tolerance).

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use poir_core::{
    BackendKind, CoreError, Engine, QueryRequest, ServiceConfig, ServiceStats, ShardSpec,
    TelemetryOptions,
};
use poir_storage::{FaultKind, FaultOp, FaultPlan, FaultRule, FaultSchedule, FaultStats};

use crate::paper_device;
use crate::throughput::{Workload, TOP_K};

/// Default concurrency ladder; crosses [`DEFAULT_QUEUE_CAPACITY`] at the
/// top so rejections appear.
pub const DEFAULT_LEVELS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Default admission-queue capacity.
pub const DEFAULT_QUEUE_CAPACITY: usize = 32;

/// Default sharding layout for the committed baseline: 4 shards, 4
/// workers.
pub const DEFAULT_SHARDS: usize = 4;

/// Default queries per concurrency level.
pub const DEFAULT_QUERIES_PER_LEVEL: usize = 200;

/// Default slow-query flight-recorder threshold for the harness,
/// microseconds.
pub const DEFAULT_SLOW_THRESHOLD_MICROS: u64 = 10_000;

/// Chaos-mode configuration: a seeded [`FaultPlan`] installed on the
/// service's device so the ladder runs against injected storage faults.
/// Fully deterministic given the seed — a chaos failure is replayable.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Seed for the per-rule fault streams.
    pub seed: u64,
    /// Per-mille probability of an injected EIO per device read.
    pub eio_per_mille: u32,
    /// Per-mille probability of an injected short read per device read.
    pub short_read_per_mille: u32,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions { seed: 0x5EED, eio_per_mille: 20, short_read_per_mille: 10 }
    }
}

impl ChaosOptions {
    /// The fault plan these options describe: two seeded Bernoulli rules
    /// (EIO and short read on any device read) plus one deterministic
    /// early short read, so even a tiny smoke run observes at least one
    /// injected fault.
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::new()
            .rule(FaultRule::new(
                FaultOp::Read,
                FaultKind::Eio,
                FaultSchedule::Seeded { seed: self.seed, per_mille: self.eio_per_mille },
            ))
            .rule(FaultRule::new(
                FaultOp::Read,
                FaultKind::ShortRead,
                FaultSchedule::Seeded {
                    seed: self.seed.wrapping_add(1),
                    per_mille: self.short_read_per_mille,
                },
            ))
            .rule(
                FaultRule::new(FaultOp::Read, FaultKind::ShortRead, FaultSchedule::Nth { n: 2 })
                    .max_fires(1),
            )
    }
}

/// Harness configuration: the service layout plus the observability
/// knobs forwarded into [`ServiceConfig`].
#[derive(Debug, Clone)]
pub struct LatencyOptions {
    /// Sharding layout (shards x workers).
    pub spec: ShardSpec,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Query budget per concurrency level.
    pub queries_per_level: usize,
    /// End-to-end microseconds past which a request enters the slow-query
    /// flight recorder.
    pub slow_threshold_micros: u64,
    /// Slowest requests the flight recorder retains.
    pub slow_capacity: usize,
    /// When set, the service's background sampler appends stats JSON
    /// lines here (plus `<path>.prom` at shutdown).
    pub stats_out: Option<String>,
    /// Sampling interval for `stats_out`, milliseconds.
    pub stats_interval_millis: u64,
    /// When set, run the ladder under injected storage faults.
    pub chaos: Option<ChaosOptions>,
    /// Query-result cache capacity, entries (0 disables — the committed
    /// baseline's configuration, so the ladder measures evaluation, not
    /// cache hits).
    pub result_cache_entries: usize,
    /// Decoded-block cache byte budget, shared across shards (0 disables
    /// — the committed baseline's configuration).
    pub block_cache_bytes: usize,
}

impl Default for LatencyOptions {
    fn default() -> Self {
        LatencyOptions {
            spec: ShardSpec::new(DEFAULT_SHARDS, DEFAULT_SHARDS),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            queries_per_level: DEFAULT_QUERIES_PER_LEVEL,
            slow_threshold_micros: DEFAULT_SLOW_THRESHOLD_MICROS,
            slow_capacity: 32,
            stats_out: None,
            stats_interval_millis: 1000,
            chaos: None,
            result_cache_entries: 0,
            block_cache_bytes: 0,
        }
    }
}

impl LatencyOptions {
    /// The [`ServiceConfig`] these options describe.
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            queue_capacity: self.queue_capacity,
            retry: poir_core::RetryPolicy::default(),
            slow_threshold_micros: self.slow_threshold_micros,
            slow_capacity: self.slow_capacity,
            breakdown_window: 4096,
            stats_out: self.stats_out.clone().map(Into::into),
            stats_interval: Duration::from_millis(self.stats_interval_millis.max(1)),
            result_cache_entries: self.result_cache_entries,
        }
    }
}

/// One concurrency level's measurements.
pub struct LatencyLevel {
    /// Closed-loop client threads.
    pub clients: usize,
    /// Requests that completed with a ranking.
    pub completed: usize,
    /// Requests rejected at admission ([`CoreError::Overloaded`]).
    pub rejected: usize,
    /// Completed requests whose response was degraded (missing shards);
    /// always 0 outside chaos mode.
    pub degraded: usize,
    /// Requests that failed with a non-deadline, non-overload error;
    /// always 0 outside chaos mode (a failure panics the harness there).
    pub failed: usize,
    /// Completed requests per host second.
    pub qps: f64,
    /// Median submit-to-response latency, microseconds.
    pub p50_micros: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_micros: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_micros: u64,
    /// Completions this level according to the **server's** lifetime
    /// counter delta (must agree with `completed`).
    pub server_completed: u64,
    /// `server_completed` over the level's wall time — the server-side
    /// QPS the regress gate compares against `qps`.
    pub server_qps: f64,
}

/// A complete load-generation run: the concurrency ladder plus its
/// headline figures.
pub struct LatencyRun {
    /// Shards the service ran.
    pub shards: usize,
    /// Worker threads in the service pool.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Query budget per level.
    pub queries_per_level: usize,
    /// The ladder, in ascending client order.
    pub levels: Vec<LatencyLevel>,
    /// Throughput of the single-client level (serial replay through the
    /// service).
    pub serial_qps: f64,
    /// Best throughput across the ladder.
    pub saturation_qps: f64,
    /// `saturation_qps / serial_qps` — the scale-free speedup the regress
    /// gate holds at ≥ 1.
    pub saturation_over_serial: f64,
    /// Best **server-reported** throughput across the ladder; the regress
    /// gate holds it within 15% of `saturation_qps`.
    pub server_saturation_qps: f64,
    /// The service's final stats snapshot (taken after the ladder, before
    /// shutdown).
    pub stats: ServiceStats,
    /// The slow-query flight recorder's JSONL dump.
    pub slow_jsonl: String,
    /// The chaos configuration the run used, if any.
    pub chaos: Option<ChaosOptions>,
    /// The device's fault-injection counters after the ladder (chaos
    /// runs only).
    pub fault_stats: Option<FaultStats>,
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the closed-loop ladder against a fresh sharded service.
///
/// One service instance serves every level (its buffer state stays warm
/// across the ladder, like a long-running server's would); each level
/// spends `queries_per_level` submissions. A rejected submission counts
/// against the level's budget and is not retried — the client moves on,
/// as a load-shedding caller would.
///
/// Every request carries a run-unique stable id, so flight-recorder
/// entries and trace records can be joined back to the submission.
pub fn run_latency(workload: &Workload, opts: &LatencyOptions, levels: &[usize]) -> LatencyRun {
    let device = paper_device();
    // Chaos runs bypass the Mneme buffer pools: a fully-buffered store
    // would absorb every read and the installed read faults could never
    // fire against the device.
    let backend =
        if opts.chaos.is_some() { BackendKind::MnemeNoCache } else { BackendKind::MnemeCache };
    let service = Engine::builder(&device)
        .backend(backend)
        .telemetry(TelemetryOptions::off())
        .sharding(opts.spec)
        .service_config(opts.service_config())
        .block_cache_bytes(opts.block_cache_bytes)
        .build_service(workload.index.clone())
        .expect("service build");
    // The plan goes in only after the build, so index construction runs
    // clean and every injected fault lands on the serving path.
    if let Some(chaos) = &opts.chaos {
        device.install_fault_plan(chaos.fault_plan());
    }
    let next_id = AtomicU32::new(0);
    let mut out = Vec::with_capacity(levels.len());
    for &clients in levels {
        let clients = clients.max(1);
        let next = AtomicUsize::new(0);
        let before = service.stats();
        let start = Instant::now();
        let chaos_on = opts.chaos.is_some();
        let per_client: Vec<(Vec<u64>, usize, usize, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    scope.spawn(|| {
                        let mut latencies = Vec::new();
                        let mut rejected = 0usize;
                        let mut degraded = 0usize;
                        let mut failed = 0usize;
                        loop {
                            let qi = next.fetch_add(1, Ordering::Relaxed);
                            if qi >= opts.queries_per_level {
                                break;
                            }
                            let text = &workload.queries[qi % workload.queries.len()];
                            let id = next_id.fetch_add(1, Ordering::Relaxed);
                            let t = Instant::now();
                            match service.query(QueryRequest::new(text.clone(), TOP_K).id(id)) {
                                Ok(resp) => {
                                    latencies.push(t.elapsed().as_micros() as u64);
                                    if resp.degraded.is_some() {
                                        degraded += 1;
                                    }
                                }
                                Err(CoreError::Overloaded { .. }) => {
                                    rejected += 1;
                                    std::thread::yield_now();
                                }
                                // Under chaos an injected fault can defeat
                                // the retry budget on every shard; the
                                // client records the failure and moves on.
                                Err(_) if chaos_on => failed += 1,
                                Err(e) => panic!("loadgen query failed: {e}"),
                            }
                        }
                        (latencies, rejected, degraded, failed)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
        });
        let wall = start.elapsed().as_secs_f64();
        let after = service.stats();
        let mut latencies: Vec<u64> =
            per_client.iter().flat_map(|(l, ..)| l.iter().copied()).collect();
        let rejected: usize = per_client.iter().map(|(_, r, _, _)| r).sum();
        let degraded: usize = per_client.iter().map(|(_, _, d, _)| d).sum();
        let failed: usize = per_client.iter().map(|(_, _, _, f)| f).sum();
        latencies.sort_unstable();
        let completed = latencies.len();
        let server_completed = after.completed.saturating_sub(before.completed);
        out.push(LatencyLevel {
            clients,
            completed,
            rejected,
            degraded,
            failed,
            qps: if wall > 0.0 { completed as f64 / wall } else { 0.0 },
            p50_micros: percentile(&latencies, 50.0),
            p95_micros: percentile(&latencies, 95.0),
            p99_micros: percentile(&latencies, 99.0),
            server_completed,
            server_qps: if wall > 0.0 { server_completed as f64 / wall } else { 0.0 },
        });
    }
    let stats = service.stats();
    let slow_jsonl = service.slow_queries_jsonl();
    let fault_stats = opts.chaos.as_ref().map(|_| {
        let fs = device.fault_stats();
        device.clear_fault_plan();
        fs
    });
    service.shutdown();
    let serial_qps = out.iter().find(|l| l.clients == 1).map_or(0.0, |l| l.qps);
    let saturation_qps = out.iter().map(|l| l.qps).fold(0.0, f64::max);
    let server_saturation_qps = out.iter().map(|l| l.server_qps).fold(0.0, f64::max);
    LatencyRun {
        shards: opts.spec.shards,
        workers: opts.spec.workers,
        queue_capacity: opts.queue_capacity,
        queries_per_level: opts.queries_per_level,
        levels: out,
        serial_qps,
        saturation_qps,
        saturation_over_serial: if serial_qps > 0.0 { saturation_qps / serial_qps } else { 0.0 },
        server_saturation_qps,
        stats,
        slow_jsonl,
        chaos: opts.chaos,
        fault_stats,
    }
}

impl LatencyRun {
    /// The `"latency"` member of `BENCH_throughput.json`, indented two
    /// spaces to sit inside the top-level object. The PR 8 additions
    /// (per-level server figures, `server_saturation_qps`, the embedded
    /// `stats` object) are purely additive — older baselines that lack
    /// them still parse.
    pub fn to_json(&self) -> String {
        let levels: Vec<String> = self
            .levels
            .iter()
            .map(|l| {
                format!(
                    concat!(
                        "      {{\n",
                        "        \"clients\": {},\n",
                        "        \"completed\": {},\n",
                        "        \"rejected\": {},\n",
                        "        \"degraded\": {},\n",
                        "        \"failed\": {},\n",
                        "        \"qps\": {:.3},\n",
                        "        \"p50_micros\": {},\n",
                        "        \"p95_micros\": {},\n",
                        "        \"p99_micros\": {},\n",
                        "        \"server_completed\": {},\n",
                        "        \"server_qps\": {:.3}\n",
                        "      }}"
                    ),
                    l.clients,
                    l.completed,
                    l.rejected,
                    l.degraded,
                    l.failed,
                    l.qps,
                    l.p50_micros,
                    l.p95_micros,
                    l.p99_micros,
                    l.server_completed,
                    l.server_qps,
                )
            })
            .collect();
        let chaos_json = match (&self.chaos, &self.fault_stats) {
            (Some(c), Some(fs)) => format!(
                concat!(
                    "{{\"seed\": {}, \"eio_per_mille\": {}, \"short_read_per_mille\": {}, ",
                    "\"faults\": {{\"eio\": {}, \"short_reads\": {}, \"torn_writes\": {}, ",
                    "\"power_cuts\": {}, \"panics\": {}, \"ops_matched\": {}}}}}"
                ),
                c.seed,
                c.eio_per_mille,
                c.short_read_per_mille,
                fs.eio,
                fs.short_reads,
                fs.torn_writes,
                fs.power_cuts,
                fs.panics,
                fs.ops_matched,
            ),
            _ => "null".to_string(),
        };
        format!(
            concat!(
                "{{\n",
                "    \"shards\": {},\n",
                "    \"workers\": {},\n",
                "    \"queue_capacity\": {},\n",
                "    \"queries_per_level\": {},\n",
                "    \"top_k\": {},\n",
                "    \"serial_qps\": {:.3},\n",
                "    \"saturation_qps\": {:.3},\n",
                "    \"saturation_over_serial\": {:.3},\n",
                "    \"server_saturation_qps\": {:.3},\n",
                "    \"chaos\": {},\n",
                "    \"stats\": {},\n",
                "    \"levels\": [\n{}\n    ]\n",
                "  }}"
            ),
            self.shards,
            self.workers,
            self.queue_capacity,
            self.queries_per_level,
            TOP_K,
            self.serial_qps,
            self.saturation_qps,
            self.saturation_over_serial,
            self.server_saturation_qps,
            chaos_json,
            self.stats.to_json(),
            levels.join(",\n"),
        )
    }

    /// Renders the human-readable ladder the `loadgen` binary prints,
    /// followed by the server-side summary: saturation agreement, p99
    /// attribution, and flight-recorder occupancy.
    pub fn render_table(&self) -> String {
        let chaos = self.chaos.is_some();
        let mut out = if chaos {
            format!(
                "{:<8} {:>10} {:>9} {:>9} {:>7} {:>12} {:>12} {:>10} {:>10} {:>10}\n",
                "clients",
                "completed",
                "rejected",
                "degraded",
                "failed",
                "QPS",
                "srv QPS",
                "p50(us)",
                "p95(us)",
                "p99(us)"
            )
        } else {
            format!(
                "{:<8} {:>10} {:>9} {:>12} {:>12} {:>10} {:>10} {:>10}\n",
                "clients",
                "completed",
                "rejected",
                "QPS",
                "srv QPS",
                "p50(us)",
                "p95(us)",
                "p99(us)"
            )
        };
        for l in &self.levels {
            if chaos {
                out.push_str(&format!(
                    "{:<8} {:>10} {:>9} {:>9} {:>7} {:>12.1} {:>12.1} {:>10} {:>10} {:>10}\n",
                    l.clients,
                    l.completed,
                    l.rejected,
                    l.degraded,
                    l.failed,
                    l.qps,
                    l.server_qps,
                    l.p50_micros,
                    l.p95_micros,
                    l.p99_micros,
                ));
            } else {
                out.push_str(&format!(
                    "{:<8} {:>10} {:>9} {:>12.1} {:>12.1} {:>10} {:>10} {:>10}\n",
                    l.clients,
                    l.completed,
                    l.rejected,
                    l.qps,
                    l.server_qps,
                    l.p50_micros,
                    l.p95_micros,
                    l.p99_micros,
                ));
            }
        }
        out.push_str(&format!(
            "serial {:.1} QPS, saturation {:.1} QPS ({:.2}x) on {} shards / {} workers, \
             queue capacity {}\n",
            self.serial_qps,
            self.saturation_qps,
            self.saturation_over_serial,
            self.shards,
            self.workers,
            self.queue_capacity,
        ));
        out.push_str(&format!(
            "server: saturation {:.1} QPS, completed {}, rejected {}, expired {}\n",
            self.server_saturation_qps,
            self.stats.completed,
            self.stats.rejected,
            self.stats.expired,
        ));
        if let Some(a) = &self.stats.attribution {
            out.push_str(&format!(
                "p99 attribution ({} us total): queue {} us, eval {} us, merge {} us, \
                 other {} us ({} tail samples)\n",
                a.p99_micros,
                a.breakdown.queue_micros,
                a.breakdown.eval_micros,
                a.breakdown.merge_micros,
                a.breakdown.other_micros,
                a.tail_count,
            ));
        }
        out.push_str(&format!(
            "slow queries: {} retained of {} observed past {} us",
            self.stats.slow_retained, self.stats.slow_observed, self.stats.slow_threshold_micros,
        ));
        if let (Some(c), Some(fs)) = (&self.chaos, &self.fault_stats) {
            let completed: usize = self.levels.iter().map(|l| l.completed).sum();
            let degraded: usize = self.levels.iter().map(|l| l.degraded).sum();
            let failed: usize = self.levels.iter().map(|l| l.failed).sum();
            let rate = if completed > 0 { 100.0 * degraded as f64 / completed as f64 } else { 0.0 };
            out.push_str(&format!(
                "\nchaos (seed {:#x}): {} faults injected ({} eio, {} short reads) over {} \
                 matched ops; degraded {}/{} completions ({:.1}%), {} failed, {} shard retries, \
                 {} worker panics",
                c.seed,
                fs.total_fired(),
                fs.eio,
                fs.short_reads,
                fs.ops_matched,
                degraded,
                completed,
                rate,
                failed,
                self.stats.shard_retries,
                self.stats.worker_panics,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
    }

    #[test]
    fn tiny_ladder_completes_and_scales_counts() {
        let workload = crate::throughput::prepare_workload(0.02);
        let opts = LatencyOptions {
            spec: ShardSpec::new(2, 2),
            queue_capacity: 8,
            queries_per_level: 12,
            ..LatencyOptions::default()
        };
        let run = run_latency(&workload, &opts, &[1, 4]);
        assert_eq!(run.levels.len(), 2);
        for l in &run.levels {
            // Closed-loop clients never outnumber the queue here, so no
            // rejections; every submission completes.
            assert_eq!(l.completed, 12);
            assert_eq!(l.rejected, 0);
            assert!(l.qps > 0.0);
            assert!(l.p50_micros <= l.p95_micros && l.p95_micros <= l.p99_micros);
            // The server's own counter delta must agree exactly with the
            // client-side completion count for a drained level.
            assert_eq!(l.server_completed, 12);
            assert!(l.server_qps > 0.0);
        }
        assert!(run.serial_qps > 0.0);
        assert!(run.saturation_qps >= run.serial_qps);
        assert!(run.server_saturation_qps > 0.0);
        assert_eq!(run.stats.completed, 24);
        assert_eq!(run.stats.admitted, 24);
        let json = run.to_json();
        let doc = crate::json::Json::parse(&json).expect("latency json parses");
        assert_eq!(doc.get("shards").and_then(crate::json::Json::as_u64), Some(2));
        assert_eq!(doc.get("levels").and_then(crate::json::Json::as_arr).unwrap().len(), 2);
        assert!(doc.get("stats").and_then(|s| s.get("completed")).is_some());
    }

    /// The ISSUE 8 acceptance criterion: the server's p99 attribution
    /// components sum to within 5% of the client-measured end-to-end p99.
    ///
    /// 8 closed-loop clients on a 2x2 service keep requests queued, so
    /// end-to-end totals are dominated by queue wait (milliseconds) and
    /// the client-vs-server delivery gap (reply-channel send + thread
    /// wakeup, well under 5%) cannot break the bound.
    #[test]
    fn p99_attribution_matches_client_p99_within_5_percent() {
        let workload = crate::throughput::prepare_workload(0.02);
        let opts = LatencyOptions {
            spec: ShardSpec::new(2, 2),
            queue_capacity: 16,
            queries_per_level: 80,
            slow_threshold_micros: 1,
            ..LatencyOptions::default()
        };
        let run = run_latency(&workload, &opts, &[8]);
        let level = &run.levels[0];
        assert_eq!(level.completed, 80);
        let attr = run.stats.attribution.expect("attribution after completions");
        assert_eq!(attr.samples, 80);
        // Components sum to the server-side p99 exactly, by construction.
        assert_eq!(attr.breakdown.total_micros(), attr.p99_micros);
        // And the server-side p99 agrees with the client-side one.
        let client = level.p99_micros as f64;
        let server = attr.p99_micros as f64;
        let rel = (client - server).abs() / client.max(1.0);
        assert!(
            rel <= 0.05,
            "server p99 attribution {server} vs client p99 {client} diverges {rel:.3}"
        );
        // Queue wait dominates under 8 clients on 2 workers.
        assert!(attr.breakdown.queue_micros > 0);
        // Every request beat the 1 us slow threshold, so the flight
        // recorder saw all 80 and retained its capacity.
        assert_eq!(run.stats.slow_observed, 80);
        assert_eq!(run.stats.slow_retained, opts.slow_capacity.min(80));
        assert_eq!(run.slow_jsonl.lines().count(), run.stats.slow_retained);
    }
}

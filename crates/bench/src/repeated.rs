//! Repeated-query (Zipfian) serving family: measures the cache hierarchy.
//!
//! Real query logs are heavily skewed — a small set of head queries
//! accounts for most of the traffic. This family replays a deterministic
//! Zipfian trace over the workload's query set through two otherwise
//! identical [`QueryService`](poir_core::QueryService) instances:
//!
//! * **baseline** — every cache tier off (the configuration every other
//!   family measures), and
//! * **cached** — the full hierarchy on: S3-FIFO segment buffers,
//!   a shared decoded-block cache, and the query-result cache.
//!
//! QPS uses the same simulated wall-clock convention as the throughput
//! family (host time plus the cost-model charge for the arm's device
//! I/O), so a result-cache hit is rewarded for the I/O it *didn't* do.
//! Both arms must produce bit-identical rankings for every trace entry —
//! the hierarchy's core invariant is that caches change timing, never
//! rankings.
//!
//! The run also replays the same trace's term-fetch sequence against each
//! segment-buffer replacement policy (LRU, clock, S3-FIFO) and reports
//! per-policy buffer hit rates, the tier-1 ablation table.

use std::time::Instant;

use poir_core::{
    paper_heuristic, BackendKind, Engine, MnemeInvertedFile, MnemeOptions, QueryRequest,
    ServiceConfig, ShardSpec,
};
use poir_inquery::{parse_query, InvertedFileStore, StopWords};
use poir_mneme::{BufferPolicy, PoolId};

use crate::paper_device;
use crate::throughput::{Workload, TOP_K};

/// Result-cache capacity (entries) for the cached arm.
pub const RESULT_CACHE_ENTRIES: usize = 512;

/// Decoded-block cache byte budget for the cached arm.
pub const BLOCK_CACHE_BYTES: usize = 8 << 20;

/// Zipf exponent of the repeated-query trace (s = 1.0, the classic
/// head-heavy web-query shape).
pub const ZIPF_S: f64 = 1.0;

/// Trace length as a multiple of the distinct-query count.
pub const REPEAT_FACTOR: usize = 8;

/// Speedup floor the regression gate enforces: the cached arm must be at
/// least this much faster than the no-cache baseline.
pub const SPEEDUP_FLOOR: f64 = 1.3;

/// One replacement policy's buffer behaviour under the repeated trace.
pub struct PolicyHitRate {
    /// Policy name ("lru", "clock", "s3fifo").
    pub policy: String,
    /// Segment-buffer references during the replay.
    pub refs: u64,
    /// Buffer hits.
    pub hits: u64,
    /// `hits / refs`.
    pub hit_rate: f64,
}

/// The repeated-query family's measurements.
pub struct RepeatedQueryRun {
    /// Entries in the replayed trace.
    pub trace_len: usize,
    /// Distinct queries the Zipfian draw selects from.
    pub distinct_queries: usize,
    /// Zipf exponent used for the draw.
    pub zipf_s: f64,
    /// Baseline (no caches) queries per second of simulated wall-clock.
    pub baseline_qps: f64,
    /// Cached-arm queries per second of simulated wall-clock.
    pub cached_qps: f64,
    /// `cached_qps / baseline_qps` — gated at [`SPEEDUP_FLOOR`].
    pub speedup: f64,
    /// Result-cache hit rate observed by the cached arm.
    pub result_cache_hit_rate: f64,
    /// Decoded-block cache hit rate observed by the cached arm.
    pub block_cache_hit_rate: f64,
    /// Whether the two arms' rankings were bit-identical, entry by entry.
    pub identical_rankings: bool,
    /// Per-policy segment-buffer hit rates on the same trace.
    pub policies: Vec<PolicyHitRate>,
}

/// Deterministic 64-bit LCG (Knuth MMIX constants); good enough to drive
/// a Zipfian table lookup and fully reproducible across runs.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Top 53 bits -> [0, 1).
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The Zipfian trace: `len` draws over `[0, distinct)` with probability
/// proportional to `1 / (rank + 1)^s`.
fn zipf_trace(distinct: usize, len: usize, s: f64, seed: u64) -> Vec<usize> {
    let mut cumulative = Vec::with_capacity(distinct);
    let mut total = 0.0;
    for rank in 0..distinct {
        total += 1.0 / ((rank + 1) as f64).powf(s);
        cumulative.push(total);
    }
    let mut rng = Lcg(seed);
    (0..len)
        .map(|_| {
            let u = rng.next_f64() * total;
            cumulative.partition_point(|&c| c < u).min(distinct - 1)
        })
        .collect()
}

struct ArmResult {
    qps: f64,
    rankings: Vec<Vec<(u32, u64)>>,
    result_cache_hit_rate: f64,
    block_cache_hit_rate: f64,
}

/// Replays `trace` through a two-shard service, caches on or off, and
/// measures simulated-wall-clock QPS plus the cache hit rates.
fn run_arm(workload: &Workload, trace: &[usize], caches_on: bool) -> ArmResult {
    let device = paper_device();
    let mut builder = Engine::builder(&device)
        .backend(BackendKind::MnemeCache)
        .sharding(ShardSpec::new(2, 2))
        .service_config(ServiceConfig {
            result_cache_entries: if caches_on { RESULT_CACHE_ENTRIES } else { 0 },
            ..ServiceConfig::default()
        });
    if caches_on {
        builder = builder.buffer_policy(BufferPolicy::S3Fifo).block_cache_bytes(BLOCK_CACHE_BYTES);
    }
    let service = builder.build_service(workload.index.clone()).expect("service start");
    let before = device.stats().snapshot();
    let start = Instant::now();
    let mut rankings = Vec::with_capacity(trace.len());
    for &qi in trace {
        let response =
            service.query(QueryRequest::new(workload.queries[qi].as_str(), TOP_K)).expect("query");
        rankings.push(
            response.hits.iter().map(|r| (r.doc.0, r.score.to_bits())).collect::<Vec<(u32, u64)>>(),
        );
    }
    let host_secs = start.elapsed().as_secs_f64();
    let io = device.stats().snapshot().since(&before);
    let wall = host_secs + device.cost_model().charge(&io).as_secs_f64();
    let result_cache_hit_rate = service.result_cache_stats().map_or(0.0, |s| s.hit_rate());
    let block_cache_hit_rate = service.block_cache_stats().map_or(0.0, |s| s.hit_rate());
    service.shutdown();
    ArmResult {
        qps: if wall > 0.0 { trace.len() as f64 / wall } else { 0.0 },
        rankings,
        result_cache_hit_rate,
        block_cache_hit_rate,
    }
}

/// Per-policy segment-buffer hit rates: the trace's term fetches replayed
/// against a fresh store per policy, paper-heuristic buffer sizes.
fn policy_table(workload: &Workload, trace: &[usize]) -> Vec<PolicyHitRate> {
    let stop = StopWords::default();
    let term_trace: Vec<Vec<poir_inquery::TermId>> = trace
        .iter()
        .filter_map(|&qi| parse_query(&workload.queries[qi], &stop).ok())
        .map(|parsed| {
            parsed
                .leaf_terms()
                .into_iter()
                .filter_map(|t| workload.index.dictionary.lookup(t))
                .collect()
        })
        .collect();
    let largest = workload.index.record_sizes().into_iter().max().unwrap_or(1);
    let sizes = paper_heuristic(largest, 8192);
    [BufferPolicy::Lru, BufferPolicy::Clock, BufferPolicy::S3Fifo]
        .into_iter()
        .map(|policy| {
            let device = paper_device();
            let mut dict = workload.index.dictionary.clone();
            let mut store = MnemeInvertedFile::build(
                device.create_file(),
                MnemeOptions::default(),
                &workload.index.records,
                &mut dict,
            )
            .expect("build store");
            let file = store.mneme();
            file.attach_buffer(PoolId(0), policy.build(sizes.small)).expect("small");
            file.attach_buffer(PoolId(1), policy.build(sizes.medium)).expect("medium");
            file.attach_buffer(PoolId(2), policy.build(sizes.large)).expect("large");
            device.chill();
            for terms in &term_trace {
                for &id in terms {
                    store.fetch(dict.entry(id).store_ref).expect("fetch");
                }
            }
            let stats = store.buffer_stats().expect("buffer stats");
            let refs: u64 = stats.iter().map(|s| s.refs).sum();
            let hits: u64 = stats.iter().map(|s| s.hits).sum();
            PolicyHitRate {
                policy: policy.to_string(),
                refs,
                hits,
                hit_rate: hits as f64 / refs.max(1) as f64,
            }
        })
        .collect()
}

/// Runs the full family: Zipfian trace, baseline and cached arms,
/// bit-identity check, per-policy buffer table.
pub fn run_repeated(workload: &Workload) -> RepeatedQueryRun {
    let distinct = workload.queries.len().clamp(1, 40);
    let trace = zipf_trace(distinct, distinct * REPEAT_FACTOR, ZIPF_S, 0x9E3779B97F4A7C15);
    let baseline = run_arm(workload, &trace, false);
    let cached = run_arm(workload, &trace, true);
    let identical_rankings = baseline.rankings == cached.rankings;
    RepeatedQueryRun {
        trace_len: trace.len(),
        distinct_queries: distinct,
        zipf_s: ZIPF_S,
        baseline_qps: baseline.qps,
        cached_qps: cached.qps,
        speedup: if baseline.qps > 0.0 { cached.qps / baseline.qps } else { 0.0 },
        result_cache_hit_rate: cached.result_cache_hit_rate,
        block_cache_hit_rate: cached.block_cache_hit_rate,
        identical_rankings,
        policies: policy_table(workload, &trace),
    }
}

impl RepeatedQueryRun {
    /// The `"repeated_query"` JSON object for `BENCH_throughput.json`.
    pub fn to_json(&self) -> String {
        let policies: Vec<String> = self
            .policies
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "      {{\"policy\": \"{}\", \"refs\": {}, \"hits\": {}, ",
                        "\"hit_rate\": {:.4}}}"
                    ),
                    p.policy, p.refs, p.hits, p.hit_rate
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "    \"trace_len\": {},\n",
                "    \"distinct_queries\": {},\n",
                "    \"zipf_s\": {},\n",
                "    \"baseline_qps\": {:.3},\n",
                "    \"cached_qps\": {:.3},\n",
                "    \"speedup\": {:.3},\n",
                "    \"result_cache_hit_rate\": {:.4},\n",
                "    \"block_cache_hit_rate\": {:.4},\n",
                "    \"identical_rankings\": {},\n",
                "    \"buffer_policies\": [\n{}\n    ]\n",
                "  }}"
            ),
            self.trace_len,
            self.distinct_queries,
            self.zipf_s,
            self.baseline_qps,
            self.cached_qps,
            self.speedup,
            self.result_cache_hit_rate,
            self.block_cache_hit_rate,
            self.identical_rankings,
            policies.join(",\n"),
        )
    }

    /// Human-readable summary for the bench binaries.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "repeated-query trace: {} entries over {} distinct (zipf s={})\n",
            self.trace_len, self.distinct_queries, self.zipf_s
        );
        out.push_str(&format!(
            "baseline {:.1} QPS -> cached {:.1} QPS ({:.2}x), result-cache {:.1}% / \
             block-cache {:.1}% hits, identical rankings: {}\n",
            self.baseline_qps,
            self.cached_qps,
            self.speedup,
            self.result_cache_hit_rate * 100.0,
            self.block_cache_hit_rate * 100.0,
            self.identical_rankings,
        ));
        out.push_str(&format!("{:>10} {:>8} {:>8} {:>8}\n", "policy", "refs", "hits", "rate"));
        for p in &self.policies {
            out.push_str(&format!(
                "{:>10} {:>8} {:>8} {:>8.3}\n",
                p.policy, p.refs, p.hits, p.hit_rate
            ));
        }
        out
    }
}

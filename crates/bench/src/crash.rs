//! Crash-consistency harness for the recoverable Mneme store.
//!
//! Enumerates crash points across a deterministic build/checkpoint/update
//! script over a [`RecoverableFile`], simulates a crash at each point in
//! several ways (plain drop, drop after an un-acknowledged data flush, a
//! torn log tail, and a device-level power cut), recovers, and asserts
//! that the recovered store (a) passes [`MnemeFile::validate`] clean and
//! (b) ranks a fixed query workload **bit-identically** to the no-crash
//! reference run at the matching operation prefix.
//!
//! Everything is derived from one seed: the op script, the payloads
//! (encoded [`InvertedRecord`]s), the torn-tail cuts, and the power-cut
//! placements. A failing `(seed, ops)` pair replays exactly.

use std::collections::BTreeMap;
use std::sync::Arc;

use poir_inquery::postings::{InvertedRecord, Posting};
use poir_inquery::DocId;
use poir_mneme::recovery::RecoverableFile;
use poir_mneme::{MnemeError, MnemeFile, ObjectId, PoolConfig, PoolId, PoolKindConfig};
use poir_storage::{Device, FaultKind, FaultOp, FaultPlan, FaultRule, FaultSchedule, FileHandle};

/// Harness configuration; every field feeds the deterministic generator.
#[derive(Debug, Clone, Copy)]
pub struct CrashOptions {
    /// Seed for the script, payloads, torn-tail cuts, and power cuts.
    pub seed: u64,
    /// Distinct logical terms (object slots) the script mutates.
    pub terms: usize,
    /// Mutating operations in the script (checkpoints included).
    pub ops: usize,
    /// A checkpoint lands every this-many ops.
    pub checkpoint_every: usize,
    /// Check every `stride`-th crash point (1 = every op boundary).
    pub stride: usize,
    /// Ranking depth compared bit-for-bit.
    pub k: usize,
    /// Device-level power-cut runs on top of the crash-point grid.
    pub power_cuts: usize,
}

impl Default for CrashOptions {
    fn default() -> Self {
        CrashOptions {
            seed: 0xC0FFEE,
            terms: 16,
            ops: 72,
            checkpoint_every: 12,
            stride: 1,
            k: 10,
            power_cuts: 4,
        }
    }
}

/// Outcome of one harness run.
#[derive(Debug, Default)]
pub struct CrashReport {
    /// Crash points exercised (each with every crash kind).
    pub crash_points: usize,
    /// Successful recoveries asserted (all kinds, power cuts included).
    pub recoveries: usize,
    /// Torn-tail runs where the crash struck mid-append of the crash
    /// point's own record, so recovery landed one op short.
    pub torn_tails_shortened: usize,
    /// Power-cut runs where the fault actually fired.
    pub power_cuts_fired: usize,
    /// Human-readable descriptions of every failed assertion.
    pub failures: Vec<String>,
}

impl CrashReport {
    /// True when every assertion held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-object JSON summary.
    pub fn to_json(&self) -> String {
        let fails: Vec<String> = self.failures.iter().map(|f| format!("{f:?}")).collect();
        format!(
            "{{\"crash_points\": {}, \"recoveries\": {}, \"torn_tails_shortened\": {}, \
             \"power_cuts_fired\": {}, \"failures\": [{}]}}",
            self.crash_points,
            self.recoveries,
            self.torn_tails_shortened,
            self.power_cuts_fired,
            fails.join(", ")
        )
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn seed_state(seed: u64) -> u64 {
    let s = seed ^ 0x9E37_79B9_7F4A_7C15;
    if s == 0 {
        0x2545_F491_4F6C_DD1D
    } else {
        s
    }
}

/// One script step, resolved to a creation-order object index.
#[derive(Debug, Clone)]
enum ScriptOp {
    Create { obj: usize, pool: PoolId, data: Vec<u8> },
    Update { obj: usize, data: Vec<u8> },
    Delete { obj: usize },
    Checkpoint,
}

/// What the reference run says an object holds after some prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ObjState {
    Live(Vec<u8>),
    Deleted,
}

/// Object states by creation order — the model the recovered store is
/// compared against.
type Snapshot = Vec<ObjState>;

/// A deterministic posting-list payload for `(term, version)`.
fn payload(rng: &mut u64, term: usize) -> Vec<u8> {
    let num_docs = 1 + (xorshift(rng) % 24) as usize;
    let mut docs: Vec<u32> = (0..num_docs).map(|_| (xorshift(rng) % 500) as u32).collect();
    docs.sort_unstable();
    docs.dedup();
    let postings: Vec<Posting> = docs
        .into_iter()
        .map(|d| {
            let tf = 1 + (xorshift(rng) % 4) as u32;
            let positions: Vec<u32> = (0..tf).map(|p| p * 7 + (term as u32 % 5)).collect();
            Posting { doc: DocId(d), tf, positions }
        })
        .collect();
    InvertedRecord::from_postings(postings).encode()
}

/// Generates the op script and the per-prefix shadow snapshots:
/// `snapshots[i]` is the model state after `i` ops.
fn generate(opts: &CrashOptions) -> (Vec<ScriptOp>, Vec<Snapshot>) {
    let mut rng = seed_state(opts.seed);
    let mut script = Vec::with_capacity(opts.ops);
    let mut snapshots = Vec::with_capacity(opts.ops + 1);
    // term -> current creation-order index (None = absent or deleted).
    let mut term_obj: Vec<Option<usize>> = vec![None; opts.terms.max(1)];
    let mut objects: Snapshot = Vec::new();
    snapshots.push(objects.clone());
    for i in 0..opts.ops {
        let op = if opts.checkpoint_every > 0 && (i + 1) % opts.checkpoint_every == 0 {
            ScriptOp::Checkpoint
        } else {
            let term = (xorshift(&mut rng) % opts.terms.max(1) as u64) as usize;
            match term_obj[term] {
                None => {
                    let data = payload(&mut rng, term);
                    let pool = if data.len() > 300 { PoolId(2) } else { PoolId(1) };
                    let obj = objects.len();
                    term_obj[term] = Some(obj);
                    objects.push(ObjState::Live(data.clone()));
                    ScriptOp::Create { obj, pool, data }
                }
                Some(obj) => {
                    if xorshift(&mut rng) % 10 < 7 {
                        let data = payload(&mut rng, term);
                        objects[obj] = ObjState::Live(data.clone());
                        ScriptOp::Update { obj, data }
                    } else {
                        term_obj[term] = None;
                        objects[obj] = ObjState::Deleted;
                        ScriptOp::Delete { obj }
                    }
                }
            }
        };
        script.push(op);
        snapshots.push(objects.clone());
    }
    (script, snapshots)
}

fn pool_configs() -> Vec<PoolConfig> {
    vec![
        PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
        PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 512 } },
        PoolConfig {
            id: PoolId(2),
            kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
        },
    ]
}

/// A fresh recoverable store on `device`, returning crash-surviving
/// clones of the data and log handles.
fn fresh_store(device: &Arc<Device>) -> (RecoverableFile, FileHandle, FileHandle) {
    let data = device.create_file();
    let log = device.create_file();
    let (dc, lc) = (data.clone(), log.clone());
    let inner = MnemeFile::create(data, &pool_configs(), 8).expect("mneme create");
    let rf = RecoverableFile::new(inner, log).expect("recoverable new");
    (rf, dc, lc)
}

/// Applies `script[..upto]`, pushing each created id onto `ids`.
/// Returns the index of the op that failed, if any.
fn apply_prefix(
    rf: &mut RecoverableFile,
    script: &[ScriptOp],
    upto: usize,
    ids: &mut Vec<ObjectId>,
) -> Result<(), (usize, MnemeError)> {
    for (i, op) in script[..upto].iter().enumerate() {
        let r = match op {
            ScriptOp::Create { obj, pool, data } => match rf.create_object(*pool, data) {
                Ok(id) => {
                    debug_assert_eq!(*obj, ids.len(), "creation order must be stable");
                    ids.push(id);
                    Ok(())
                }
                Err(e) => Err(e),
            },
            ScriptOp::Update { obj, data } => rf.update(ids[*obj], data),
            ScriptOp::Delete { obj } => rf.delete(ids[*obj]),
            ScriptOp::Checkpoint => rf.checkpoint(),
        };
        if let Err(e) = r {
            return Err((i, e));
        }
    }
    Ok(())
}

/// True when the recovered file holds exactly the model state `snap`
/// (live payloads byte-equal, deletions tombstoned, later objects never
/// seen). `ids` is the full creation-order id list from the reference
/// run; objects beyond `snap.len()` must be absent.
fn matches_snapshot(file: &mut MnemeFile, snap: &Snapshot, ids: &[ObjectId]) -> bool {
    for (n, id) in ids.iter().enumerate() {
        let got = file.get(*id);
        let ok = match snap.get(n) {
            Some(ObjState::Live(data)) => {
                matches!(&got, Ok(bytes) if bytes.as_slice() == data.as_slice())
            }
            Some(ObjState::Deleted) => matches!(got, Err(MnemeError::ObjectDeleted(_))),
            None => {
                matches!(got, Err(MnemeError::NoSuchObject(_)) | Err(MnemeError::ObjectDeleted(_)))
            }
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Top-`k` ranking over a model state with a fixed scoring formula:
/// every live record is a query term, belief `0.4 + 0.6·tf/(tf+1)`
/// weighted by `1/(1+df)`. Ties break on ascending doc id. Returns
/// `(doc, score bits)` pairs — bit-exact comparison material.
fn rank_snapshot(snap: &Snapshot, k: usize) -> Vec<(u32, u64)> {
    let mut scores: BTreeMap<u32, f64> = BTreeMap::new();
    for st in snap {
        let ObjState::Live(data) = st else { continue };
        let rec = InvertedRecord::decode(data).expect("harness payloads decode");
        let df = rec.df() as f64;
        for p in &rec.postings {
            let tf = p.tf as f64;
            let belief = (0.4 + 0.6 * tf / (tf + 1.0)) / (1.0 + df);
            *scores.entry(p.doc.0).or_insert(0.0) += belief;
        }
    }
    let mut ranked: Vec<(u32, f64)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked.into_iter().map(|(d, s)| (d, s.to_bits())).collect()
}

/// Ranking computed through the recovered store itself (decode via
/// `get`), proving the serving read path sees the recovered bytes.
fn rank_recovered(
    file: &mut MnemeFile,
    count: usize,
    ids: &[ObjectId],
    k: usize,
) -> Vec<(u32, u64)> {
    let mut snap: Snapshot = Vec::with_capacity(count);
    for id in &ids[..count] {
        match file.get(*id) {
            Ok(bytes) => snap.push(ObjState::Live(bytes.into_vec())),
            Err(_) => snap.push(ObjState::Deleted),
        }
    }
    rank_snapshot(&snap, k)
}

/// After recovery, checks validation cleanliness, state equality against
/// one of the candidate prefixes, and ranking bit-identity at the
/// matched prefix. Returns the matched prefix or an error description.
fn check_recovery(
    rf: &mut RecoverableFile,
    snapshots: &[Snapshot],
    ids: &[ObjectId],
    candidates: std::ops::RangeInclusive<usize>,
    k: usize,
    what: &str,
) -> Result<usize, String> {
    let report = rf.file().validate().map_err(|e| format!("{what}: validate errored: {e}"))?;
    if !report.is_clean() {
        return Err(format!("{what}: validation problems: {:?}", report.problems));
    }
    // Scan from the latest candidate down — the common case is the full
    // prefix surviving.
    for p in candidates.clone().rev() {
        if matches_snapshot(rf.file(), &snapshots[p], ids) {
            let want = rank_snapshot(&snapshots[p], k);
            let got = rank_recovered(rf.file(), snapshots[p].len(), ids, k);
            if want != got {
                return Err(format!(
                    "{what}: prefix {p} state matches but ranking diverges: {want:?} vs {got:?}"
                ));
            }
            return Ok(p);
        }
    }
    Err(format!("{what}: recovered state matches no prefix in {candidates:?}"))
}

/// Runs the full harness: the crash-point grid (drop, flush-then-drop,
/// torn tail at every `stride`-th op boundary) plus `power_cuts`
/// device-level power-cut runs.
pub fn run_crash_harness(opts: &CrashOptions) -> CrashReport {
    let mut report = CrashReport::default();
    let (script, snapshots) = generate(opts);

    // Reference run: no crash; learns the deterministic id assignment.
    let mut ids: Vec<ObjectId> = Vec::new();
    {
        let device = Device::with_defaults();
        let (mut rf, _, _) = fresh_store(&device);
        if let Err((i, e)) = apply_prefix(&mut rf, &script, script.len(), &mut ids) {
            report.failures.push(format!("reference run failed at op {i}: {e}"));
            return report;
        }
    }

    let mut cut_rng = seed_state(opts.seed ^ 0xDEAD_BEEF);
    let stride = opts.stride.max(1);
    for i in (1..=script.len()).step_by(stride) {
        report.crash_points += 1;
        // Crash kind 1: plain drop — unflushed data-file state is lost,
        // the log has everything since the last checkpoint.
        {
            let device = Device::with_defaults();
            let (mut rf, data, log) = fresh_store(&device);
            let mut run_ids = Vec::new();
            if let Err((j, e)) = apply_prefix(&mut rf, &script, i, &mut run_ids) {
                report.failures.push(format!("drop@{i}: op {j} failed: {e}"));
                continue;
            }
            drop(rf);
            match RecoverableFile::recover(data, log) {
                Ok(mut rec) => {
                    match check_recovery(
                        &mut rec,
                        &snapshots,
                        &ids,
                        i..=i,
                        opts.k,
                        &format!("drop@{i}"),
                    ) {
                        Ok(_) => report.recoveries += 1,
                        Err(e) => report.failures.push(e),
                    }
                }
                Err(e) => report.failures.push(format!("drop@{i}: recover failed: {e}")),
            }
        }
        // Crash kind 2: data flushed (as checkpoint's first half would)
        // but the log never truncated — the idempotent-replay path.
        {
            let device = Device::with_defaults();
            let (mut rf, data, log) = fresh_store(&device);
            let mut run_ids = Vec::new();
            if apply_prefix(&mut rf, &script, i, &mut run_ids).is_err() {
                report.failures.push(format!("flush-drop@{i}: prefix apply failed"));
                continue;
            }
            if let Err(e) = rf.file().flush() {
                report.failures.push(format!("flush-drop@{i}: flush failed: {e}"));
                continue;
            }
            drop(rf);
            match RecoverableFile::recover(data, log) {
                Ok(mut rec) => {
                    match check_recovery(
                        &mut rec,
                        &snapshots,
                        &ids,
                        i..=i,
                        opts.k,
                        &format!("flush-drop@{i}"),
                    ) {
                        Ok(_) => report.recoveries += 1,
                        Err(e) => report.failures.push(e),
                    }
                }
                Err(e) => report.failures.push(format!("flush-drop@{i}: recover failed: {e}")),
            }
        }
        // Crash kind 3: torn log tail. The log is synced before every
        // mutation touches the data file (the write-ahead rule), so the
        // only record a real crash can tear is the one being appended when
        // the machine died — an op that never reached the data file.
        // Seeded sub-variants: the crash strikes either while appending
        // the *next* op's record (full prefix survives, garbage tail) or
        // mid-append of op `i` itself (ops `1..i` applied, op `i`'s
        // record torn — recovery lands one op short). Garbage stays under
        // the 14-byte minimum record length so it can never parse as a
        // complete record.
        {
            let device = Device::with_defaults();
            let (mut rf, data, log) = fresh_store(&device);
            let mut run_ids = Vec::new();
            let mid_append = xorshift(&mut cut_rng) & 1 == 1 && i > 0;
            let applied = if mid_append { i - 1 } else { i };
            if apply_prefix(&mut rf, &script, applied, &mut run_ids).is_err() {
                report.failures.push(format!("torn@{i}: prefix apply failed"));
                continue;
            }
            drop(rf);
            let len = log.len().unwrap_or(0);
            let garbage_len = 1 + (xorshift(&mut cut_rng) % 13) as usize;
            let garbage: Vec<u8> = (0..garbage_len).map(|_| xorshift(&mut cut_rng) as u8).collect();
            if let Err(e) = log.write(len, &garbage) {
                report.failures.push(format!("torn@{i}: tail write failed: {e}"));
                continue;
            }
            match RecoverableFile::recover(data, log) {
                Ok(mut rec) => match check_recovery(
                    &mut rec,
                    &snapshots,
                    &ids,
                    applied..=applied,
                    opts.k,
                    &format!("torn@{i} applied {applied} tail {garbage_len}B"),
                ) {
                    Ok(_) => {
                        report.recoveries += 1;
                        if mid_append {
                            report.torn_tails_shortened += 1;
                        }
                    }
                    Err(e) => report.failures.push(e),
                },
                Err(e) => report.failures.push(format!("torn@{i}: recover failed: {e}")),
            }
        }
    }

    // Power-cut runs: a device-level fault drops every write since the
    // last durability barrier and poisons the device; after clearing the
    // plan (the "reboot"), recovery must land on a legal earlier prefix.
    let mut pc_rng = seed_state(opts.seed ^ 0x5EED_CAFE);
    for w in 0..opts.power_cuts {
        let device = Device::with_defaults();
        let (mut rf, data, log) = fresh_store(&device);
        // The plan arms only after setup, so file creation runs clean.
        let nth = xorshift(&mut pc_rng) % (script.len() as u64 * 2);
        device.install_fault_plan(FaultPlan::new().rule(FaultRule::new(
            FaultOp::Write,
            FaultKind::PowerCut,
            FaultSchedule::Nth { n: nth },
        )));
        let mut run_ids = Vec::new();
        let fired = match apply_prefix(&mut rf, &script, script.len(), &mut run_ids) {
            Ok(()) => None,
            Err((j, _)) => Some(j),
        };
        drop(rf);
        device.clear_fault_plan();
        // The op that observed the cut may still replay to completion:
        // its log record syncs *before* the mutation touches the data
        // file, so a cut during the data write leaves a durable record
        // behind — recovery can legally land one op past the failure.
        let upper = fired.map(|j| (j + 1).min(script.len())).unwrap_or(script.len());
        if fired.is_some() {
            report.power_cuts_fired += 1;
        }
        match RecoverableFile::recover(data, log) {
            Ok(mut rec) => match check_recovery(
                &mut rec,
                &snapshots,
                &ids,
                0..=upper,
                opts.k,
                &format!("powercut#{w} nth {nth}"),
            ) {
                Ok(_) => report.recoveries += 1,
                Err(e) => report.failures.push(e),
            },
            Err(e) => report.failures.push(format!("powercut#{w}: recover failed: {e}")),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_is_bit_identical_at_every_crash_point() {
        let opts = CrashOptions {
            ops: 24,
            terms: 6,
            checkpoint_every: 8,
            stride: 2,
            power_cuts: 2,
            ..CrashOptions::default()
        };
        let report = run_crash_harness(&opts);
        assert!(report.passed(), "failures: {:#?}", report.failures);
        assert_eq!(report.crash_points, 12);
        // Every crash point recovered three ways, plus the power cuts.
        assert_eq!(report.recoveries, 12 * 3 + 2);
    }

    #[test]
    fn generator_is_deterministic() {
        let opts = CrashOptions::default();
        let (s1, snap1) = generate(&opts);
        let (s2, snap2) = generate(&opts);
        assert_eq!(snap1, snap2);
        assert_eq!(s1.len(), s2.len());
        assert_eq!(snap1.len(), opts.ops + 1);
        // Checkpoints land where configured.
        assert!(matches!(s1[opts.checkpoint_every - 1], ScriptOp::Checkpoint));
    }
}

//! The throughput measurement procedure shared by the `throughput` and
//! `regress` binaries.
//!
//! Both binaries must run the *identical* procedure — same collection,
//! same query set, same engine configuration, same execution modes — or
//! the regression gate would compare apples to oranges. The procedure
//! lives here; the binaries only parse flags and decide what to do with
//! the [`ThroughputRun`].
//!
//! QPS is measured against simulated wall-clock: real engine time plus the
//! cost-model charge for the run's device I/O. Parallel runs divide the
//! device time across threads (each worker drives its own I/O channel), so
//! the speedup reflects overlapped I/O, not host parallelism.

use std::sync::Arc;

use poir_collections::{generate_queries, tipster, SyntheticCollection};
use poir_core::{
    BackendKind, Engine, ExecMode, QuerySetReport, RankedResult, TelemetryOptions, Tracer,
};
use poir_inquery::{Index, IndexBuilder, StopWords};
use poir_telemetry::Event;

use crate::paper_device;

/// Documents retrieved per query, fixed across the whole procedure.
pub const TOP_K: usize = 100;

/// The collection and query set the throughput procedure runs against.
pub struct Workload {
    /// Collection label ("TIPSTER").
    pub collection: String,
    /// Documents indexed.
    pub num_docs: usize,
    /// Scale factor the collection was generated at.
    pub scale: f64,
    /// The built index, shared by every engine the procedure constructs.
    pub index: Index,
    /// Query texts.
    pub queries: Vec<String>,
}

/// Generates and indexes the TIPSTER-shaped workload at `scale`.
pub fn prepare_workload(scale: f64) -> Workload {
    let paper = tipster().scale(scale);
    let collection = SyntheticCollection::new(paper.spec.clone());
    let mut builder = IndexBuilder::new(StopWords::default());
    for doc in collection.documents() {
        builder.add_document(&doc.name, &doc.text);
    }
    let index = builder.finish();
    let queries: Vec<String> =
        generate_queries(&collection, &paper.query_sets[0]).into_iter().map(|q| q.text).collect();
    Workload {
        collection: paper.spec.name.clone(),
        num_docs: paper.spec.num_docs,
        scale,
        index,
        queries,
    }
}

/// One execution mode's measurements.
pub struct ModeResult {
    /// Mode label ("serial", "batched_prefetch", "daat", "daat_pruned",
    /// "parallel_2", "parallel_4").
    pub name: String,
    /// Worker threads used (1 for the serial modes).
    pub threads: usize,
    /// Queries per second of simulated wall-clock.
    pub qps: f64,
    /// Simulated wall-clock for the whole set, seconds.
    pub wall_clock_secs: f64,
    /// The underlying query-set report (I/A/B counters, timings).
    pub report: QuerySetReport,
    /// Per-query rankings, for cross-mode consistency checks.
    pub rankings: Vec<Vec<RankedResult>>,
}

/// Decode-kernel throughput, measured on a counter-instrumented
/// `daat_pruned` pass: postings actually decoded per second of engine
/// (CPU) time. The posting counts are deterministic for a given workload,
/// so this family isolates the codec + cursor kernel from I/O behaviour —
/// a slower block decoder moves it even when QPS hides behind the
/// simulated I/O charge.
pub struct DecodeThroughput {
    /// Postings decoded by the pruned evaluator.
    pub postings_decoded: u64,
    /// Posting payload bytes run through the cursors' decoders.
    pub bytes_decoded: u64,
    /// Blocks decoded from the v2 bit-packed representation.
    pub blocks_bitpacked: u64,
    /// Engine (CPU) seconds for the instrumented pass.
    pub engine_secs: f64,
    /// The gated figure: `postings_decoded / engine_secs`.
    pub postings_per_engine_sec: f64,
}

/// A complete throughput run: every mode, measured on fresh engines.
pub struct ThroughputRun {
    /// Workload identification, echoed into the JSON.
    pub collection: String,
    /// Documents indexed.
    pub num_docs: usize,
    /// Collection scale factor.
    pub scale: f64,
    /// Number of queries in the set.
    pub queries: usize,
    /// Mode measurements, serial first.
    pub modes: Vec<ModeResult>,
    /// Whether every mode produced byte-identical rankings.
    pub identical_rankings: bool,
    /// `parallel_4` QPS over serial QPS.
    pub parallel_4_speedup: f64,
    /// Decode-kernel throughput (separate instrumented pass).
    pub decode: DecodeThroughput,
    /// Sustained-load latency ladder (separate service pass; `None` until
    /// the caller runs [`crate::latency::run_latency`] and attaches it).
    pub latency: Option<crate::latency::LatencyRun>,
    /// Repeated-query cache-hierarchy family (separate service pass;
    /// `None` until the caller runs [`crate::repeated::run_repeated`] and
    /// attaches it).
    pub repeated: Option<crate::repeated::RepeatedQueryRun>,
}

fn fresh_engine(index: &Index, telemetry: TelemetryOptions) -> Engine {
    Engine::builder(&paper_device())
        .backend(BackendKind::MnemeCache)
        .telemetry(telemetry)
        .build(index.clone())
        .expect("engine build")
}

fn ranking_key(rankings: &[Vec<RankedResult>]) -> Vec<Vec<(u32, u64)>> {
    rankings.iter().map(|q| q.iter().map(|r| (r.doc.0, r.score.to_bits())).collect()).collect()
}

/// How many independent decode passes [`measure_decode`] takes; the
/// fastest one is reported.
const DECODE_PASSES: usize = 3;

/// Measures [`DecodeThroughput`]: extra `daat_pruned` passes on fresh
/// engines with counters-only telemetry (one relaxed atomic add per
/// event). These passes never feed the QPS figures, so their small
/// instrumentation cost is shared by baseline and fresh runs alike.
///
/// Unlike the QPS families, this pass is a single short run, so one
/// scheduler hiccup can swing the figure by >10% — enough to trip the
/// regression gate on an otherwise untouched kernel. Decoded-posting
/// counts are deterministic across passes, so best-of-N is simply the
/// pass with the least engine time: the standard way to estimate a
/// kernel's capability under external noise.
fn measure_decode(workload: &Workload, queries: &[&str]) -> DecodeThroughput {
    let mut best: Option<DecodeThroughput> = None;
    for _ in 0..DECODE_PASSES {
        let mut engine = fresh_engine(&workload.index, TelemetryOptions::counters_only());
        let (report, _) =
            engine.run_query_set_mode(queries, TOP_K, ExecMode::DaatPruned).expect("decode pass");
        let metrics = report.metrics.expect("counters-only run reports metrics");
        let engine_secs = report.engine_time.as_secs_f64();
        let postings_decoded = metrics.delta.get(Event::PostingsDecoded);
        let pass = DecodeThroughput {
            postings_decoded,
            bytes_decoded: metrics.delta.get(Event::BytesDecoded),
            blocks_bitpacked: metrics.delta.get(Event::BlocksBitpacked),
            engine_secs,
            postings_per_engine_sec: if engine_secs > 0.0 {
                postings_decoded as f64 / engine_secs
            } else {
                0.0
            },
        };
        match &best {
            Some(b) if b.postings_per_engine_sec >= pass.postings_per_engine_sec => {}
            _ => best = Some(pass),
        }
    }
    best.expect("at least one decode pass")
}

/// Runs the full procedure: serial, batched prefetch, and parallel on 2
/// and 4 threads, each on a fresh engine and a fresh device so the I/O
/// counters are independent.
///
/// `telemetry` is applied to every engine; the committed baseline and the
/// regression gate both use [`TelemetryOptions::off`] so the measured
/// path carries zero instrumentation overhead.
pub fn run_throughput(workload: &Workload, telemetry: TelemetryOptions) -> ThroughputRun {
    let queries: Vec<&str> = workload.queries.iter().map(|q| q.as_str()).collect();
    let mut modes: Vec<ModeResult> = Vec::new();
    // JSON mode names come from ExecMode's Display impl, which round-trips
    // through FromStr ("serial", "batched_prefetch", "daat", "daat_pruned").
    for mode in [ExecMode::Serial, ExecMode::BatchedPrefetch, ExecMode::Daat, ExecMode::DaatPruned]
    {
        let mut engine = fresh_engine(&workload.index, telemetry);
        let (report, rankings) =
            engine.run_query_set_mode(&queries, TOP_K, mode).expect("query set");
        let wall = report.wall_clock_secs();
        modes.push(ModeResult {
            name: mode.to_string(),
            threads: 1,
            qps: queries.len() as f64 / wall,
            wall_clock_secs: wall,
            report,
            rankings,
        });
    }
    for threads in [2usize, 4usize] {
        let mut engine = fresh_engine(&workload.index, telemetry);
        let parallel =
            engine.run_query_set_parallel(&queries, TOP_K, threads).expect("parallel run");
        modes.push(ModeResult {
            name: format!("parallel_{threads}"),
            threads,
            qps: parallel.qps(),
            wall_clock_secs: parallel.wall_clock_secs(),
            report: parallel.report,
            rankings: parallel.rankings,
        });
    }

    // Two equivalence families: the term-at-a-time modes (serial, batched,
    // parallel) must be byte-identical to each other, and pruned DAAT must
    // be byte-identical to unpruned DAAT. Across families only the
    // floating-point association order differs, so scores match to ~1e-12
    // but not bit for bit.
    let serial_key = ranking_key(&modes[0].rankings);
    let daat_key = ranking_key(&modes.iter().find(|m| m.name == "daat").unwrap().rankings);
    let identical_rankings = modes.iter().all(|m| match m.name.as_str() {
        "daat" | "daat_pruned" => ranking_key(&m.rankings) == daat_key,
        _ => ranking_key(&m.rankings) == serial_key,
    });
    let serial_qps = modes[0].qps;
    let parallel_4_speedup =
        modes.iter().find(|m| m.threads == 4).map_or(0.0, |m| m.qps / serial_qps);

    let decode = measure_decode(workload, &queries);

    ThroughputRun {
        collection: workload.collection.clone(),
        num_docs: workload.num_docs,
        scale: workload.scale,
        queries: workload.queries.len(),
        modes,
        identical_rankings,
        parallel_4_speedup,
        decode,
        latency: None,
        repeated: None,
    }
}

fn json_mode(m: &ModeResult, serial: &QuerySetReport) -> String {
    let r = &m.report;
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"{}\",\n",
            "      \"threads\": {},\n",
            "      \"qps\": {:.3},\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"engine_secs\": {:.6},\n",
            "      \"sys_io_secs\": {:.6},\n",
            "      \"record_lookups\": {},\n",
            "      \"io_inputs\": {},\n",
            "      \"file_accesses\": {},\n",
            "      \"accesses_per_lookup\": {:.4},\n",
            "      \"kbytes_read\": {},\n",
            "      \"delta_vs_serial\": {{\n",
            "        \"io_inputs\": {},\n",
            "        \"accesses_per_lookup\": {:.4},\n",
            "        \"kbytes_read\": {}\n",
            "      }}\n",
            "    }}"
        ),
        m.name,
        m.threads,
        m.qps,
        m.wall_clock_secs,
        r.engine_time.as_secs_f64(),
        r.sys_io_time.as_secs_f64(),
        r.record_lookups,
        r.io_inputs(),
        r.io.file_accesses,
        r.accesses_per_lookup(),
        r.kbytes_read(),
        r.io_inputs() as i64 - serial.io_inputs() as i64,
        r.accesses_per_lookup() - serial.accesses_per_lookup(),
        r.kbytes_read() as i64 - serial.kbytes_read() as i64,
    )
}

impl ThroughputRun {
    /// The `BENCH_throughput.json` document for this run.
    pub fn to_json(&self) -> String {
        let serial = &self.modes[0].report;
        let modes_json: Vec<String> = self.modes.iter().map(|m| json_mode(m, serial)).collect();
        let latency_json = match &self.latency {
            Some(l) => format!("  \"latency\": {},\n", l.to_json()),
            None => String::new(),
        };
        let repeated_json = match &self.repeated {
            Some(r) => format!("  \"repeated_query\": {},\n", r.to_json()),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\n",
                "  \"collection\": \"{}\",\n",
                "  \"num_docs\": {},\n",
                "  \"scale\": {},\n",
                "  \"queries\": {},\n",
                "  \"top_k\": {},\n",
                "  \"identical_rankings\": {},\n",
                "  \"parallel_4_speedup_vs_serial\": {:.3},\n",
                "  \"decode_throughput\": {{\n",
                "    \"mode\": \"daat_pruned\",\n",
                "    \"postings_decoded\": {},\n",
                "    \"bytes_decoded\": {},\n",
                "    \"blocks_bitpacked\": {},\n",
                "    \"engine_secs\": {:.6},\n",
                "    \"postings_per_engine_sec\": {:.0}\n",
                "  }},\n",
                "{}",
                "{}",
                "  \"modes\": [\n{}\n  ]\n",
                "}}\n"
            ),
            self.collection,
            self.num_docs,
            self.scale,
            self.queries,
            TOP_K,
            self.identical_rankings,
            self.parallel_4_speedup,
            self.decode.postings_decoded,
            self.decode.bytes_decoded,
            self.decode.blocks_bitpacked,
            self.decode.engine_secs,
            self.decode.postings_per_engine_sec,
            latency_json,
            repeated_json,
            modes_json.join(",\n"),
        )
    }

    /// Renders the human-readable mode table the `throughput` binary prints.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<18} {:>8} {:>12} {:>8} {:>8} {:>8} {:>8}\n",
            "mode", "threads", "QPS", "I", "A", "B(KB)", "lookups"
        );
        for m in &self.modes {
            out.push_str(&format!(
                "{:<18} {:>8} {:>12.2} {:>8} {:>8.3} {:>8} {:>8}\n",
                m.name,
                m.threads,
                m.qps,
                m.report.io_inputs(),
                m.report.accesses_per_lookup(),
                m.report.kbytes_read(),
                m.report.record_lookups,
            ));
        }
        out.push_str(&format!("identical rankings across modes: {}\n", self.identical_rankings));
        out.push_str(&format!("parallel_4 speedup over serial: {:.2}x\n", self.parallel_4_speedup));
        out.push_str(&format!(
            "decode kernel: {:.1}M postings/engine-sec ({} decoded, {} bit-packed blocks)",
            self.decode.postings_per_engine_sec / 1e6,
            self.decode.postings_decoded,
            self.decode.blocks_bitpacked,
        ));
        out
    }
}

/// Runs a traced pass over the workload — one serial instrumented run and
/// one parallel run — on a single tracing engine, and returns its tracer.
///
/// The serial pass produces nested query/phase/I-O slices on one track;
/// the parallel pass adds one track per worker thread with lock-wait
/// spans on the shared Mneme read path. Both accumulate into the same
/// ring buffer so one export shows both shapes.
pub fn run_traced(workload: &Workload, capacity: usize, threads: usize) -> Arc<Tracer> {
    let queries: Vec<&str> = workload.queries.iter().map(|q| q.as_str()).collect();
    let mut engine = fresh_engine(&workload.index, TelemetryOptions::tracing(capacity));
    engine.run_query_set_mode(&queries, TOP_K, ExecMode::Serial).expect("traced serial run");
    engine.run_query_set_parallel(&queries, TOP_K, threads).expect("traced parallel run");
    engine.tracer().cloned().expect("tracing engine has a tracer")
}

/// Writes the Chrome trace (at `path`) and the flat JSONL access log (at
/// `path` with its extension swapped to `.jsonl`), prints where they went
/// and the buffer-residency report, and returns the JSONL path.
pub fn export_trace(tracer: &Tracer, path: &str) -> std::io::Result<String> {
    let jsonl_path = match path.rsplit_once('.') {
        Some((stem, _)) => format!("{stem}.jsonl"),
        None => format!("{path}.jsonl"),
    };
    std::fs::write(path, tracer.chrome_trace_json())?;
    std::fs::write(&jsonl_path, tracer.access_log_jsonl())?;
    eprintln!(
        "# wrote {} trace records ({} dropped) to {path} (Chrome trace) and {jsonl_path} (JSONL)",
        tracer.len(),
        tracer.dropped(),
    );
    eprintln!("{}", tracer.residency_report(10).render());
    Ok(jsonl_path)
}

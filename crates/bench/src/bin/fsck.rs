//! Offline integrity checker for Mneme store files.
//!
//! ```text
//! cargo run --release -p poir-bench --bin fsck -- [--recover-log LOG] STORE
//! ```
//!
//! Opens `STORE` (a Mneme data file on the host filesystem) and runs
//! [`MnemeFile::validate`]: location tables walked, every referenced
//! segment bounds- and overlap-checked, headers parsed, live objects
//! cross-checked against the tables. With `--recover-log LOG` the store is
//! opened through [`RecoverableFile::recover`] first, so a redo log left
//! by a crash is replayed before the check (the store file is modified the
//! way a normal recovery would modify it).
//!
//! Prints a triage summary; every problem found goes to stderr. Exits 0
//! when the store is clean, 1 when validation found problems, 2 on usage
//! or open errors. `--selftest` builds a sample store on real host files,
//! verifies it validates clean, then corrupts a segment header and
//! verifies the damage is reported — a self-contained smoke of both exit
//! paths.

use poir_mneme::recovery::RecoverableFile;
use poir_mneme::{MnemeFile, PoolConfig, PoolId, PoolKindConfig};
use poir_storage::Device;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// Builds a throwaway store on host files, validates it clean, smashes a
/// segment header byte, and checks the corruption is detected.
fn selftest() -> ! {
    let dir = std::env::temp_dir().join(format!("poir-fsck-selftest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| die(&format!("creating {dir:?}: {e}")));
    let store_path = dir.join("sample.mneme");
    let pools = vec![
        PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
        PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 4096 } },
        PoolConfig {
            id: PoolId(2),
            kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
        },
    ];
    let device = Device::with_defaults();
    let handle = device
        .create_file_at(&store_path)
        .unwrap_or_else(|e| die(&format!("creating sample store: {e}")));
    let mut file =
        MnemeFile::create(handle.clone(), &pools, 8).unwrap_or_else(|e| die(&format!("{e}")));
    // The first object's segment lands right after the 8 KB file header.
    file.create_object(PoolId(2), &vec![7u8; 4000]).unwrap_or_else(|e| die(&format!("{e}")));
    for i in 0..200u32 {
        let pool = PoolId(if i % 5 == 0 { 0 } else { 1 });
        let len = if pool == PoolId(0) { (i % 12) as usize } else { 20 + (i as usize % 300) };
        file.create_object(pool, &vec![(i % 251) as u8; len])
            .unwrap_or_else(|e| die(&format!("{e}")));
    }
    file.flush().unwrap_or_else(|e| die(&format!("{e}")));
    let clean = file.validate().unwrap_or_else(|e| die(&format!("{e}")));
    if !clean.is_clean() {
        die(&format!("selftest: fresh sample store not clean: {:?}", clean.problems));
    }
    println!(
        "selftest: clean pass ok ({} segments, {} live objects)",
        clean.segments_checked, clean.live_objects
    );
    handle.write(8192, &[0xEE]).unwrap_or_else(|e| die(&format!("{e}")));
    let mut reopened = MnemeFile::open(handle).unwrap_or_else(|e| die(&format!("{e}")));
    let damaged = reopened.validate().unwrap_or_else(|e| die(&format!("{e}")));
    std::fs::remove_dir_all(&dir).ok();
    if damaged.is_clean() {
        eprintln!("selftest: corrupted segment header went undetected");
        std::process::exit(1);
    }
    println!("selftest: corruption detected ({} problem(s))", damaged.problems.len());
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store_path: Option<String> = None;
    let mut log_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--recover-log" => match it.next() {
                Some(p) => log_path = Some(p.clone()),
                None => die("--recover-log needs a path"),
            },
            "--selftest" => selftest(),
            "--help" | "-h" => {
                eprintln!("usage: fsck [--recover-log LOG] STORE | fsck --selftest");
                return;
            }
            other if other.starts_with('-') => die(&format!("unknown arg {other:?}")),
            other => match store_path {
                None => store_path = Some(other.to_string()),
                Some(_) => die("exactly one STORE path expected"),
            },
        }
    }
    let Some(store_path) = store_path else { die("a STORE path is required") };

    let device = Device::with_defaults();
    let store = device
        .create_file_at(std::path::Path::new(&store_path))
        .unwrap_or_else(|e| die(&format!("opening {store_path}: {e}")));

    let report = match &log_path {
        Some(log_path) => {
            let log = device
                .create_file_at(std::path::Path::new(log_path))
                .unwrap_or_else(|e| die(&format!("opening {log_path}: {e}")));
            let replayed = log.len().unwrap_or(0);
            let mut rf = RecoverableFile::recover(store, log)
                .unwrap_or_else(|e| die(&format!("recovering {store_path}: {e}")));
            eprintln!("# replayed redo log {log_path} ({replayed} bytes)");
            rf.file().validate()
        }
        None => {
            let mut file = MnemeFile::open(store)
                .unwrap_or_else(|e| die(&format!("opening {store_path}: {e}")));
            file.validate()
        }
    }
    .unwrap_or_else(|e| die(&format!("validation errored: {e}")));

    println!(
        "{store_path}: {} segments checked, {} live objects, {} problem(s)",
        report.segments_checked,
        report.live_objects,
        report.problems.len()
    );
    if !report.is_clean() {
        for p in &report.problems {
            eprintln!("PROBLEM: {p}");
        }
        std::process::exit(1);
    }
}

//! Closed-loop load generator for the sharded query service.
//!
//! Builds a TIPSTER-shaped workload, starts a [`poir_core::QueryService`]
//! with the requested sharding and queue capacity, and drives the
//! closed-loop concurrency ladder from [`poir_bench::latency`]: each level
//! runs `--queries` submissions across `N` client threads and reports
//! completions, rejections, throughput, and p50/p95/p99 host-time latency
//! side by side with the server's own windowed metrics.
//!
//! ```text
//! cargo run --release -p poir-bench --bin loadgen -- \
//!     [--scale F] [--shards NxM] [--queue N] [--levels 1,2,4,...] \
//!     [--queries N] [--out PATH] [--stats-out PATH] [--slow-out PATH] \
//!     [--slow-threshold-micros N] [--result-cache N] [--block-cache-bytes N] \
//!     [--chaos] [--chaos-seed N] [--chaos-eio PER_MILLE] [--chaos-short PER_MILLE]
//! ```
//!
//! `--result-cache N` turns on the service's query-result cache (N
//! entries) and `--block-cache-bytes N` the shared decoded-block cache;
//! the round-robin client draw repeats query texts once a level wraps
//! the query set, so the stats sampler's cache counters move.
//!
//! `--out` writes the latency family as a standalone JSON document (the
//! same object `throughput` embeds under `"latency"` in
//! `BENCH_throughput.json`; CI schema-checks it). `--stats-out` turns on
//! the service's background sampler: periodic [`ServiceStats`] JSON lines
//! land at the path while the run is live, plus a Prometheus text
//! exposition at `PATH.prom` on shutdown. `--slow-out` dumps the
//! slow-query flight recorder as JSONL; `--slow-threshold-micros` sets
//! the end-to-end latency past which a request enters it.
//!
//! [`ServiceStats`]: poir_core::ServiceStats
//!
//! `--chaos` installs a seeded fault plan on the service's device before
//! the ladder runs (no-cache backend, so reads reach the device): seeded
//! EIO and short-read failpoints whose rates `--chaos-eio` /
//! `--chaos-short` set in per-mille, replayable via `--chaos-seed`. The
//! table and JSON then carry degraded/failed counts per level and the
//! device's fault counters.
//!
//! Exits 0 on success, 1 when saturation throughput fails to reach the
//! single-client throughput (the service scaled *negatively*; skipped
//! under `--chaos`, where injected faults distort scaling), 2 on usage
//! errors.

use poir_bench::latency::{run_latency, ChaosOptions, LatencyOptions, DEFAULT_LEVELS};
use poir_bench::throughput::prepare_workload;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.05f64;
    let mut opts = LatencyOptions::default();
    let mut levels: Vec<usize> = DEFAULT_LEVELS.to_vec();
    let mut out_path: Option<String> = None;
    let mut slow_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse().ok()).filter(|&v: &f64| v > 0.0) {
                Some(v) => scale = v,
                None => die("--scale needs a positive number"),
            },
            "--shards" => match it.next().map(|v| v.parse()) {
                Some(Ok(s)) => opts.spec = s,
                Some(Err(e)) => die(&format!("--shards: {e}")),
                None => die("--shards needs a spec like 4x4"),
            },
            "--queue" => match it.next().and_then(|v| v.parse().ok()).filter(|&v: &usize| v > 0) {
                Some(v) => opts.queue_capacity = v,
                None => die("--queue needs a positive integer"),
            },
            "--levels" => match it.next() {
                Some(list) => {
                    levels = list
                        .split(',')
                        .map(|v| match v.trim().parse::<usize>() {
                            Ok(n) if n > 0 => n,
                            _ => die("--levels needs positive integers like 1,2,4"),
                        })
                        .collect();
                    if levels.is_empty() {
                        die("--levels needs at least one level");
                    }
                }
                None => die("--levels needs a comma-separated list"),
            },
            "--queries" => {
                match it.next().and_then(|v| v.parse().ok()).filter(|&v: &usize| v > 0) {
                    Some(v) => opts.queries_per_level = v,
                    None => die("--queries needs a positive integer"),
                }
            }
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => die("--out needs a path"),
            },
            "--stats-out" => match it.next() {
                Some(p) => opts.stats_out = Some(p.clone()),
                None => die("--stats-out needs a path"),
            },
            "--slow-out" => match it.next() {
                Some(p) => slow_out = Some(p.clone()),
                None => die("--slow-out needs a path"),
            },
            "--slow-threshold-micros" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.slow_threshold_micros = v,
                None => die("--slow-threshold-micros needs a non-negative integer"),
            },
            "--result-cache" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.result_cache_entries = v,
                None => die("--result-cache needs a non-negative entry count"),
            },
            "--block-cache-bytes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.block_cache_bytes = v,
                None => die("--block-cache-bytes needs a non-negative byte count"),
            },
            "--chaos" => {
                opts.chaos.get_or_insert_with(ChaosOptions::default);
            }
            "--chaos-seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.chaos.get_or_insert_with(ChaosOptions::default).seed = v,
                None => die("--chaos-seed needs an integer"),
            },
            "--chaos-eio" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v <= 1000 => {
                    opts.chaos.get_or_insert_with(ChaosOptions::default).eio_per_mille = v;
                }
                _ => die("--chaos-eio needs a per-mille rate in 0..=1000"),
            },
            "--chaos-short" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v <= 1000 => {
                    opts.chaos.get_or_insert_with(ChaosOptions::default).short_read_per_mille = v;
                }
                _ => die("--chaos-short needs a per-mille rate in 0..=1000"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--scale F] [--shards NxM] [--queue N] \
                     [--levels 1,2,4,...] [--queries N] [--out PATH] \
                     [--stats-out PATH] [--slow-out PATH] [--slow-threshold-micros N] \
                     [--result-cache N] [--block-cache-bytes N] [--chaos] \
                     [--chaos-seed N] [--chaos-eio PER_MILLE] [--chaos-short PER_MILLE]"
                );
                return;
            }
            other => die(&format!("unknown arg {other:?}")),
        }
    }

    eprintln!("# generating + indexing TIPSTER at scale {scale}");
    let workload = prepare_workload(scale);
    eprintln!(
        "# service {} (shards x workers), queue capacity {}, {} queries/level",
        opts.spec, opts.queue_capacity, opts.queries_per_level
    );
    let run = run_latency(&workload, &opts, &levels);
    println!("{}", run.render_table());

    if let Some(path) = &out_path {
        std::fs::write(path, format!("{}\n", run.to_json()))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("# wrote {path}");
    }
    if let Some(path) = &slow_out {
        std::fs::write(path, &run.slow_jsonl)
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("# wrote {path} ({} slow queries)", run.stats.slow_retained);
    }
    if let Some(path) = &opts.stats_out {
        eprintln!("# sampler wrote {path} and {path}.prom");
    }

    // Chaos runs measure degradation, not scaling: injected faults and
    // retry backoff make the saturation/serial ratio meaningless there.
    if run.chaos.is_none() && run.saturation_over_serial < 1.0 {
        eprintln!(
            "ERROR: saturation {:.1} QPS below single-client {:.1} QPS",
            run.saturation_qps, run.serial_qps
        );
        std::process::exit(1);
    }
}

//! Prints collection-shape calibration data: record counts, small-record
//! fraction, and pool population for each paper collection at a given
//! scale. Used to tune DESIGN.md §4's generator parameters.

use poir_bench::{build_index, RunConfig};
use poir_collections::SyntheticCollection;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let cfg = RunConfig { scale, top_k: 100, ..RunConfig::default() };
    for paper in poir_collections::paper_collections() {
        let scaled = paper.clone().scale(cfg.scale);
        let collection = SyntheticCollection::new(scaled.spec.clone());
        let start = std::time::Instant::now();
        let (index, raw) = build_index(&collection);
        let small = index.fraction_at_most(12);
        let large = index.records.iter().filter(|(_, r)| r.len() > 4096).count();
        let medium = index.records.len()
            - large
            - index.records.iter().filter(|(_, r)| r.len() <= 12).count();
        let largest = index.record_sizes().into_iter().max().unwrap_or(0);
        println!(
            "{:<10} docs {:>7} raw {:>9} KB records {:>8} small% {:>5.1} medium {:>7} large {:>5} largest {:>9} B index {:>8} KB build {:?}",
            scaled.spec.name,
            scaled.spec.num_docs,
            raw / 1024,
            index.records.len(),
            small * 100.0,
            medium,
            large,
            largest,
            index.total_record_bytes() / 1024,
            start.elapsed(),
        );
    }
}

//! Query throughput across execution modes on a TIPSTER-shaped collection.
//!
//! Runs the same query set four ways on the cached Mneme configuration —
//! serial, batched prefetch, and parallel on 2 and 4 threads — and writes
//! `BENCH_throughput.json` with queries-per-second plus the Table 5 I/O
//! deltas (I = blocks input, A = file accesses per record lookup,
//! B = Kbytes read) of each mode relative to serial.
//!
//! ```text
//! cargo run --release -p poir-bench --bin throughput -- [--scale F] [--out PATH]
//! ```
//!
//! QPS is measured against simulated wall-clock: real engine time plus the
//! cost-model charge for the run's device I/O. Parallel runs divide the
//! device time across threads (each worker drives its own I/O channel), so
//! the speedup reflects overlapped I/O, not host parallelism.

use poir_bench::paper_device;
use poir_collections::{generate_queries, tipster, SyntheticCollection};
use poir_core::{BackendKind, Engine, ExecMode, QuerySetReport, RankedResult};
use poir_inquery::{Index, IndexBuilder, StopWords};

const TOP_K: usize = 100;

struct ModeResult {
    name: String,
    threads: usize,
    qps: f64,
    wall_clock_secs: f64,
    report: QuerySetReport,
    rankings: Vec<Vec<RankedResult>>,
}

fn fresh_engine(index: &Index) -> Engine {
    Engine::builder(&paper_device())
        .backend(BackendKind::MnemeCache)
        .build(index.clone())
        .expect("engine build")
}

fn ranking_key(rankings: &[Vec<RankedResult>]) -> Vec<Vec<(u32, u64)>> {
    rankings.iter().map(|q| q.iter().map(|r| (r.doc.0, r.score.to_bits())).collect()).collect()
}

fn json_mode(m: &ModeResult, serial: &QuerySetReport) -> String {
    let r = &m.report;
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"{}\",\n",
            "      \"threads\": {},\n",
            "      \"qps\": {:.3},\n",
            "      \"wall_clock_secs\": {:.6},\n",
            "      \"engine_secs\": {:.6},\n",
            "      \"sys_io_secs\": {:.6},\n",
            "      \"record_lookups\": {},\n",
            "      \"io_inputs\": {},\n",
            "      \"file_accesses\": {},\n",
            "      \"accesses_per_lookup\": {:.4},\n",
            "      \"kbytes_read\": {},\n",
            "      \"delta_vs_serial\": {{\n",
            "        \"io_inputs\": {},\n",
            "        \"accesses_per_lookup\": {:.4},\n",
            "        \"kbytes_read\": {}\n",
            "      }}\n",
            "    }}"
        ),
        m.name,
        m.threads,
        m.qps,
        m.wall_clock_secs,
        r.engine_time.as_secs_f64(),
        r.sys_io_time.as_secs_f64(),
        r.record_lookups,
        r.io_inputs(),
        r.io.file_accesses,
        r.accesses_per_lookup(),
        r.kbytes_read(),
        r.io_inputs() as i64 - serial.io_inputs() as i64,
        r.accesses_per_lookup() - serial.accesses_per_lookup(),
        r.kbytes_read() as i64 - serial.kbytes_read() as i64,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.05f64;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0.0) {
                Some(v) => scale = v,
                None => {
                    eprintln!("error: --scale needs a positive number");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("usage: throughput [--scale F] [--out PATH] (unknown arg {other:?})");
                std::process::exit(2);
            }
        }
    }

    let paper = tipster().scale(scale);
    eprintln!("# generating + indexing {} ({} docs)", paper.spec.name, paper.spec.num_docs);
    let collection = SyntheticCollection::new(paper.spec.clone());
    let mut builder = IndexBuilder::new(StopWords::default());
    for doc in collection.documents() {
        builder.add_document(&doc.name, &doc.text);
    }
    let index = builder.finish();
    let queries: Vec<String> =
        generate_queries(&collection, &paper.query_sets[0]).into_iter().map(|q| q.text).collect();
    eprintln!("# {} queries, top-{TOP_K}", queries.len());

    let mut results: Vec<ModeResult> = Vec::new();
    // JSON mode names come from ExecMode's Display impl, which round-trips
    // through FromStr ("serial", "batched_prefetch").
    for mode in [ExecMode::Serial, ExecMode::BatchedPrefetch] {
        let mut engine = fresh_engine(&index);
        let (report, rankings) =
            engine.run_query_set_mode(&queries, TOP_K, mode).expect("query set");
        let wall = report.wall_clock_secs();
        results.push(ModeResult {
            name: mode.to_string(),
            threads: 1,
            qps: queries.len() as f64 / wall,
            wall_clock_secs: wall,
            report,
            rankings,
        });
    }
    for threads in [2usize, 4usize] {
        let mut engine = fresh_engine(&index);
        let parallel =
            engine.run_query_set_parallel(&queries, TOP_K, threads).expect("parallel run");
        results.push(ModeResult {
            name: format!("parallel_{threads}"),
            threads,
            qps: parallel.qps(),
            wall_clock_secs: parallel.wall_clock_secs(),
            report: parallel.report,
            rankings: parallel.rankings,
        });
    }

    let serial_key = ranking_key(&results[0].rankings);
    let identical = results.iter().all(|m| ranking_key(&m.rankings) == serial_key);
    let serial_qps = results[0].qps;
    let speedup_4 = results.iter().find(|m| m.threads == 4).map_or(0.0, |m| m.qps / serial_qps);

    println!(
        "{:<18} {:>8} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "mode", "threads", "QPS", "I", "A", "B(KB)", "lookups"
    );
    for m in &results {
        println!(
            "{:<18} {:>8} {:>12.2} {:>8} {:>8.3} {:>8} {:>8}",
            m.name,
            m.threads,
            m.qps,
            m.report.io_inputs(),
            m.report.accesses_per_lookup(),
            m.report.kbytes_read(),
            m.report.record_lookups,
        );
    }
    println!("identical rankings across modes: {identical}");
    println!("parallel_4 speedup over serial: {speedup_4:.2}x");

    let serial_report = results[0].report.clone();
    let modes_json: Vec<String> = results.iter().map(|m| json_mode(m, &serial_report)).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"collection\": \"{}\",\n",
            "  \"num_docs\": {},\n",
            "  \"scale\": {},\n",
            "  \"queries\": {},\n",
            "  \"top_k\": {},\n",
            "  \"identical_rankings\": {},\n",
            "  \"parallel_4_speedup_vs_serial\": {:.3},\n",
            "  \"modes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        paper.spec.name,
        paper.spec.num_docs,
        scale,
        queries.len(),
        TOP_K,
        identical,
        speedup_4,
        modes_json.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write json");
    eprintln!("# wrote {out_path}");

    if !identical {
        eprintln!("ERROR: rankings diverged across execution modes");
        std::process::exit(1);
    }
}

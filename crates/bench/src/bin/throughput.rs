//! Query throughput across execution modes on a TIPSTER-shaped collection.
//!
//! Runs the same query set four ways on the cached Mneme configuration —
//! serial, batched prefetch, and parallel on 2 and 4 threads — and writes
//! `BENCH_throughput.json` with queries-per-second plus the Table 5 I/O
//! deltas (I = blocks input, A = file accesses per record lookup,
//! B = Kbytes read) of each mode relative to serial.
//!
//! ```text
//! cargo run --release -p poir-bench --bin throughput -- \
//!     [--scale F] [--out PATH] [--trace-out PATH]
//! ```
//!
//! The measurement procedure itself lives in [`poir_bench::throughput`] so
//! the `regress` gate reruns it identically. `--trace-out PATH` performs an
//! additional traced pass (serial plus parallel, tracing telemetry on) after
//! the measured runs and writes a Perfetto-loadable Chrome trace to `PATH`
//! and a flat JSONL access log alongside it; the measured runs themselves
//! always execute with telemetry off.

use poir_bench::latency::{run_latency, LatencyOptions, DEFAULT_LEVELS};
use poir_bench::repeated::run_repeated;
use poir_bench::throughput::{export_trace, prepare_workload, run_throughput, run_traced};
use poir_core::TelemetryOptions;

/// Ring-buffer capacity for the optional traced pass.
const TRACE_CAPACITY: usize = 1 << 20;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.05f64;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut trace_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0.0) {
                Some(v) => scale = v,
                None => {
                    eprintln!("error: --scale needs a positive number");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p.clone()),
                None => {
                    eprintln!("error: --trace-out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "usage: throughput [--scale F] [--out PATH] [--trace-out PATH] \
                     (unknown arg {other:?})"
                );
                std::process::exit(2);
            }
        }
    }

    eprintln!("# generating + indexing TIPSTER at scale {scale}");
    let workload = prepare_workload(scale);
    eprintln!("# {} queries, top-{}", workload.queries.len(), poir_bench::throughput::TOP_K);

    let mut run = run_throughput(&workload, TelemetryOptions::off());
    println!("{}", run.render_table());

    let opts = LatencyOptions::default();
    eprintln!(
        "# sustained-load ladder ({} shards, queue {}, {} queries/level)",
        opts.spec.shards, opts.queue_capacity, opts.queries_per_level
    );
    let latency = run_latency(&workload, &opts, &DEFAULT_LEVELS);
    println!("{}", latency.render_table());
    run.latency = Some(latency);

    eprintln!("# repeated-query cache-hierarchy family (Zipfian trace)");
    let repeated = run_repeated(&workload);
    println!("{}", repeated.render_table());
    let repeated_ok = repeated.identical_rankings;
    run.repeated = Some(repeated);

    std::fs::write(&out_path, run.to_json()).expect("write json");
    eprintln!("# wrote {out_path}");

    if let Some(path) = trace_out {
        eprintln!("# traced pass (serial + parallel_2, ring capacity {TRACE_CAPACITY})");
        let tracer = run_traced(&workload, TRACE_CAPACITY, 2);
        export_trace(&tracer, &path).expect("write trace");
    }

    if !run.identical_rankings {
        eprintln!("ERROR: rankings diverged across execution modes");
        std::process::exit(1);
    }
    if !repeated_ok {
        eprintln!("ERROR: cached rankings diverged from the no-cache baseline");
        std::process::exit(1);
    }
}

//! Performance-regression gate against the committed throughput baseline.
//!
//! Reruns the exact [`poir_bench::throughput`] procedure (same collection
//! scale, same query set, same modes, telemetry off) and compares every
//! mode against `BENCH_throughput.json`:
//!
//! * **QPS** must lie within `--tolerance` (default ±10%) of the baseline —
//!   the headline throughput gate. QPS here is simulated wall-clock
//!   (engine time + cost-model I/O charge). Serial runs are nearly
//!   deterministic; parallel runs are not — the shared OS-cache state
//!   depends on worker interleaving, so I (and with it QPS) moves a few
//!   percent run to run.
//! * **A** (file accesses per record lookup) must lie within the same
//!   tolerance — any drift there is a behavioural change in the access
//!   path, not noise.
//! * **I** (blocks input) and **lookups** are compared exactly and
//!   reported, but only warn: they gate via A and QPS.
//! * **Decode kernel** — postings decoded per engine-second on a
//!   counter-instrumented `daat_pruned` pass — must not fall more than
//!   `--tolerance` below the baseline (one-sided: faster never fails).
//!   This isolates the block codec + cursor path from I/O behaviour.
//! * **Repeated queries** — the cache hierarchy must earn its keep: on a
//!   Zipfian repeated-query trace the fully-cached service must beat the
//!   no-cache service by ≥ 1.3x QPS with bit-identical rankings and
//!   non-zero hit rates on both the result and decoded-block caches
//!   (one-sided floors; both arms are fresh, so host speed cancels).
//! * **Server agreement** — the service's own metrics must report a
//!   saturation QPS within 15% of the client-side loadgen measurement of
//!   the same run (fresh vs fresh, so host speed cancels; this gates the
//!   observability plumbing itself).
//! * Serial and `parallel_4` must additionally pass the 2% trace-overhead
//!   budget. To keep that strict gate immune to the parallel I/O noise
//!   above, it compares QPS recomputed at the *baseline's* I/O charge:
//!   `queries / (fresh engine time + baseline sys-I/O time / threads)`.
//!   The only thing that moves that number is engine (CPU) time — which
//!   is exactly where disabled-tracing overhead would show up, since the
//!   measured run has tracing off and every hook costs one `Option`
//!   branch.
//!
//! ```text
//! cargo run --release -p poir-bench --bin regress -- \
//!     [--baseline PATH] [--tolerance F] [--trace-out PATH] [--out PATH]
//! ```
//!
//! Exits 0 when every gate passes, 1 on a regression, 2 on usage or
//! baseline-parse errors. `--trace-out` additionally runs one traced pass
//! and writes the Chrome trace + JSONL log (CI uploads these as artifacts);
//! the traced pass happens after measurement and never affects the gate.

use poir_bench::json::Json;
use poir_bench::latency::{run_latency, LatencyOptions, LatencyRun};
use poir_bench::repeated::{run_repeated, RepeatedQueryRun, SPEEDUP_FLOOR};
use poir_bench::throughput::{
    export_trace, prepare_workload, run_throughput, run_traced, DecodeThroughput, ThroughputRun,
};
use poir_core::{ShardSpec, TelemetryOptions};

const TRACE_CAPACITY: usize = 1 << 20;
/// Trace-disabled overhead budget on serial and parallel_4 QPS.
const OVERHEAD_TOLERANCE: f64 = 0.02;
/// One-sided latency-ladder budgets. These figures are pure host time
/// under thread scheduling — far noisier than the simulated-clock QPS
/// family — so the gates are generous: they catch a service that stopped
/// scaling (an accidentally serialized pool, a lock storm), not
/// percent-level drift. p99 may grow to 3x the baseline; saturation
/// throughput may fall to half. The scale-free `saturation_over_serial`
/// ratio is gated at ≥ 1 regardless — concurrency must never lose to the
/// single-client replay.
const LATENCY_P99_TOLERANCE: f64 = 2.0;
const LATENCY_QPS_TOLERANCE: f64 = 0.5;
/// Server-agreement gate: the service's own windowed-metrics saturation
/// QPS must agree with the client-side loadgen measurement within this
/// fraction. Fresh-vs-fresh (both figures come from the same run), so it
/// is immune to host speed — it catches the observatory itself drifting:
/// a completion counter that double-counts, a sampler window that loses
/// events, a wall-clock mismatch between the two measurements.
const SERVER_QPS_AGREEMENT: f64 = 0.15;

struct BaselineMode {
    name: String,
    threads: usize,
    qps: f64,
    sys_io_secs: f64,
    accesses_per_lookup: f64,
    io_inputs: u64,
    record_lookups: u64,
}

struct BaselineDecode {
    postings_decoded: u64,
    postings_per_engine_sec: f64,
}

struct BaselineRepeated {
    speedup: f64,
    result_cache_hit_rate: f64,
    block_cache_hit_rate: f64,
}

struct BaselineLatency {
    shards: usize,
    workers: usize,
    queue_capacity: usize,
    queries_per_level: usize,
    /// `(clients, p99_micros)` per ladder level, ascending.
    levels: Vec<(usize, u64)>,
    saturation_qps: f64,
    saturation_over_serial: f64,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn load_baseline(
    path: &str,
) -> (f64, Vec<BaselineMode>, BaselineDecode, BaselineLatency, BaselineRepeated) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("reading baseline {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
    let scale =
        doc.get("scale").and_then(Json::as_f64).unwrap_or_else(|| die("baseline lacks \"scale\""));
    let modes = doc
        .get("modes")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| die("baseline lacks \"modes\""))
        .iter()
        .map(|m| {
            let field = |key: &str| {
                m.get(key)
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| die(&format!("baseline mode lacks {key:?}")))
            };
            BaselineMode {
                name: m
                    .get("mode")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| die("baseline mode lacks \"mode\""))
                    .to_string(),
                threads: field("threads") as usize,
                qps: field("qps"),
                sys_io_secs: field("sys_io_secs"),
                accesses_per_lookup: field("accesses_per_lookup"),
                io_inputs: field("io_inputs") as u64,
                record_lookups: field("record_lookups") as u64,
            }
        })
        .collect();
    let decode = doc
        .get("decode_throughput")
        .map(|d| {
            let field = |key: &str| {
                d.get(key)
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| die(&format!("baseline decode_throughput lacks {key:?}")))
            };
            BaselineDecode {
                postings_decoded: field("postings_decoded") as u64,
                postings_per_engine_sec: field("postings_per_engine_sec"),
            }
        })
        .unwrap_or_else(|| die("baseline lacks \"decode_throughput\" — regenerate it"));
    let latency = doc
        .get("latency")
        .map(|l| {
            let field = |key: &str| {
                l.get(key)
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| die(&format!("baseline latency lacks {key:?}")))
            };
            let levels = l
                .get("levels")
                .and_then(Json::as_arr)
                .unwrap_or_else(|| die("baseline latency lacks \"levels\""))
                .iter()
                .map(|level| {
                    let get = |key: &str| {
                        level.get(key).and_then(Json::as_u64).unwrap_or_else(|| {
                            die(&format!("baseline latency level lacks {key:?}"))
                        })
                    };
                    (get("clients") as usize, get("p99_micros"))
                })
                .collect();
            BaselineLatency {
                shards: field("shards") as usize,
                workers: field("workers") as usize,
                queue_capacity: field("queue_capacity") as usize,
                queries_per_level: field("queries_per_level") as usize,
                levels,
                saturation_qps: field("saturation_qps"),
                saturation_over_serial: field("saturation_over_serial"),
            }
        })
        .unwrap_or_else(|| die("baseline lacks \"latency\" — regenerate it"));
    let repeated = doc
        .get("repeated_query")
        .map(|r| {
            let field = |key: &str| {
                r.get(key)
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| die(&format!("baseline repeated_query lacks {key:?}")))
            };
            BaselineRepeated {
                speedup: field("speedup"),
                result_cache_hit_rate: field("result_cache_hit_rate"),
                block_cache_hit_rate: field("block_cache_hit_rate"),
            }
        })
        .unwrap_or_else(|| die("baseline lacks \"repeated_query\" — regenerate it"));
    (scale, modes, decode, latency, repeated)
}

/// Relative deviation of `fresh` from `base` (0 when both are 0).
fn rel(fresh: f64, base: f64) -> f64 {
    if base == 0.0 {
        if fresh == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (fresh - base).abs() / base
    }
}

fn compare(run: &ThroughputRun, baseline: &[BaselineMode], tolerance: f64) -> bool {
    let mut ok = true;
    println!(
        "{:<18} {:>12} {:>12} {:>8} {:>9} {:>9} {:>7} {:>9}  verdict",
        "mode", "qps(base)", "qps(fresh)", "dev%", "A(base)", "A(fresh)", "dev%", "ovhd%"
    );
    for base in baseline {
        let Some(fresh) = run.modes.iter().find(|m| m.name == base.name) else {
            println!("{:<18} missing from fresh run", base.name);
            ok = false;
            continue;
        };
        let qps_dev = rel(fresh.qps, base.qps);
        let a_fresh = fresh.report.accesses_per_lookup();
        let a_dev = rel(a_fresh, base.accesses_per_lookup);
        // Strict modes: QPS at the baseline's I/O charge isolates engine
        // (CPU) time, which is where instrumentation overhead would land.
        let strict = base.name == "serial" || base.name == "parallel_4";
        let overhead_dev = if strict {
            let wall = fresh.report.engine_time.as_secs_f64()
                + base.sys_io_secs / base.threads.max(1) as f64;
            rel(run.queries as f64 / wall, base.qps)
        } else {
            0.0
        };
        let pass = qps_dev <= tolerance && a_dev <= tolerance && overhead_dev <= OVERHEAD_TOLERANCE;
        println!(
            "{:<18} {:>12.2} {:>12.2} {:>7.2}% {:>9.4} {:>9.4} {:>6.2}% {:>8}  {}",
            base.name,
            base.qps,
            fresh.qps,
            qps_dev * 100.0,
            base.accesses_per_lookup,
            a_fresh,
            a_dev * 100.0,
            if strict { format!("{:.2}%", overhead_dev * 100.0) } else { "-".to_string() },
            if pass { "ok" } else { "REGRESSION" },
        );
        if fresh.report.io_inputs() != base.io_inputs {
            let cause = if fresh.threads > 1 {
                "parallel cache interleaving; gated via A and QPS"
            } else {
                "deterministic counter moved"
            };
            println!(
                "  note: io_inputs {} vs baseline {} ({cause})",
                fresh.report.io_inputs(),
                base.io_inputs
            );
        }
        if fresh.report.record_lookups != base.record_lookups {
            println!(
                "  note: record_lookups {} vs baseline {} (workload changed?)",
                fresh.report.record_lookups, base.record_lookups
            );
        }
        ok &= pass;
    }
    ok
}

/// Decode-kernel gate: postings decoded per engine-second must not fall
/// more than `tolerance` below the baseline. One-sided — the numerator is
/// deterministic for the workload but the denominator is host CPU time,
/// and a decoder that got *faster* must never fail the build.
fn compare_decode(fresh: &DecodeThroughput, base: &BaselineDecode, tolerance: f64) -> bool {
    let drop = if base.postings_per_engine_sec > 0.0 {
        (base.postings_per_engine_sec - fresh.postings_per_engine_sec)
            / base.postings_per_engine_sec
    } else {
        0.0
    };
    let pass = drop <= tolerance;
    println!(
        "{:<18} {:>12.2} {:>12.2} {:>7.2}% (postings decoded / engine-sec, in M; \
         one-sided)  {}",
        "decode_kernel",
        base.postings_per_engine_sec / 1e6,
        fresh.postings_per_engine_sec / 1e6,
        drop * 100.0,
        if pass { "ok" } else { "REGRESSION" },
    );
    if fresh.postings_decoded != base.postings_decoded {
        println!(
            "  note: postings_decoded {} vs baseline {} (pruning behaviour changed?)",
            fresh.postings_decoded, base.postings_decoded
        );
    }
    pass
}

/// Latency-ladder gate, all one-sided (see the tolerance constants):
/// p99 at the gate level (16 clients, or the ladder's top level when 16
/// is absent) must not exceed `(1 + LATENCY_P99_TOLERANCE)x` the
/// baseline; saturation throughput must not fall below
/// `(1 - LATENCY_QPS_TOLERANCE)x`; and the scale-free saturation/serial
/// ratio must stay ≥ 1.
fn compare_latency(fresh: &LatencyRun, base: &BaselineLatency) -> bool {
    let gate_clients = base
        .levels
        .iter()
        .map(|&(c, _)| c)
        .find(|&c| c == 16)
        .or_else(|| base.levels.iter().map(|&(c, _)| c).max())
        .expect("baseline latency has levels");
    let base_p99 =
        base.levels.iter().find(|&&(c, _)| c == gate_clients).map(|&(_, p)| p).unwrap_or(0);
    let fresh_p99 =
        fresh.levels.iter().find(|l| l.clients == gate_clients).map_or(u64::MAX, |l| l.p99_micros);
    let p99_pass = fresh_p99 as f64 <= base_p99 as f64 * (1.0 + LATENCY_P99_TOLERANCE);
    let qps_pass = fresh.saturation_qps >= base.saturation_qps * (1.0 - LATENCY_QPS_TOLERANCE);
    let ratio_pass = fresh.saturation_over_serial >= 1.0;
    println!(
        "{:<18} p99@{}c {}us vs {}us (<= {:.0}%), saturation {:.1} vs {:.1} QPS \
         (>= {:.0}%), saturation/serial {:.2}x vs {:.2}x (>= 1)  {}",
        "latency_ladder",
        gate_clients,
        fresh_p99,
        base_p99,
        (1.0 + LATENCY_P99_TOLERANCE) * 100.0,
        fresh.saturation_qps,
        base.saturation_qps,
        (1.0 - LATENCY_QPS_TOLERANCE) * 100.0,
        fresh.saturation_over_serial,
        base.saturation_over_serial,
        if p99_pass && qps_pass && ratio_pass { "ok" } else { "REGRESSION" },
    );
    p99_pass && qps_pass && ratio_pass
}

/// Repeated-query cache-hierarchy gate, one-sided floors on the fresh
/// run: the cached arm must beat the no-cache baseline arm by at least
/// [`SPEEDUP_FLOOR`], both cache tiers must actually hit under the
/// Zipfian trace, and the cached rankings must be bit-identical to the
/// uncached ones. The committed baseline's figures are printed for
/// context only — both arms are fresh, so host speed cancels and the
/// speedup needs no cross-host tolerance.
fn compare_repeated(fresh: &RepeatedQueryRun, base: &BaselineRepeated) -> bool {
    let speedup_pass = fresh.speedup >= SPEEDUP_FLOOR;
    let hits_pass = fresh.result_cache_hit_rate > 0.0 && fresh.block_cache_hit_rate > 0.0;
    let pass = speedup_pass && hits_pass && fresh.identical_rankings;
    println!(
        "{:<18} speedup {:.2}x vs {:.2}x base (>= {:.1}x), result-cache {:.0}% \
         (base {:.0}%), block-cache {:.0}% (base {:.0}%), identical rankings {}  {}",
        "repeated_query",
        fresh.speedup,
        base.speedup,
        SPEEDUP_FLOOR,
        fresh.result_cache_hit_rate * 100.0,
        base.result_cache_hit_rate * 100.0,
        fresh.block_cache_hit_rate * 100.0,
        base.block_cache_hit_rate * 100.0,
        fresh.identical_rankings,
        if pass { "ok" } else { "REGRESSION" },
    );
    pass
}

/// Server-agreement gate: the saturation throughput the service reports
/// from its own lifetime counters must match the client-side measurement
/// of the same run within [`SERVER_QPS_AGREEMENT`]. Both numbers are
/// fresh, so this gates the metrics plumbing, not the host.
fn compare_server_agreement(fresh: &LatencyRun) -> bool {
    let dev = rel(fresh.server_saturation_qps, fresh.saturation_qps);
    let pass = dev <= SERVER_QPS_AGREEMENT;
    println!(
        "{:<18} server {:.1} vs client {:.1} QPS at saturation, dev {:.2}% (<= {:.0}%)  {}",
        "server_metrics",
        fresh.server_saturation_qps,
        fresh.saturation_qps,
        dev * 100.0,
        SERVER_QPS_AGREEMENT * 100.0,
        if pass { "ok" } else { "REGRESSION" },
    );
    pass
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = "BENCH_throughput.json".to_string();
    let mut tolerance = 0.10f64;
    let mut trace_out: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_path = p.clone(),
                None => die("--baseline needs a path"),
            },
            "--tolerance" => {
                match it.next().and_then(|v| v.parse().ok()).filter(|&v: &f64| v > 0.0) {
                    Some(v) => tolerance = v,
                    None => die("--tolerance needs a positive fraction (e.g. 0.10)"),
                }
            }
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p.clone()),
                None => die("--trace-out needs a path"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => die("--out needs a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: regress [--baseline PATH] [--tolerance F] \
                     [--trace-out PATH] [--out PATH]"
                );
                return;
            }
            other => die(&format!("unknown arg {other:?}")),
        }
    }

    let (scale, baseline, baseline_decode, baseline_latency, baseline_repeated) =
        load_baseline(&baseline_path);
    if baseline.is_empty() {
        die("baseline has no modes");
    }
    eprintln!(
        "# regression gate vs {baseline_path}: scale {scale}, tolerance ±{:.0}% \
         (serial/parallel_4 engine-time overhead held to ±{:.0}%)",
        tolerance * 100.0,
        OVERHEAD_TOLERANCE * 100.0
    );
    let workload = prepare_workload(scale);
    let mut run = run_throughput(&workload, TelemetryOptions::off());
    // Rerun the ladder exactly as the baseline recorded it (same sharding,
    // queue, levels, and per-level budget) so the gate compares like with
    // like.
    let latency = run_latency(
        &workload,
        &LatencyOptions {
            spec: ShardSpec::new(baseline_latency.shards, baseline_latency.workers),
            queue_capacity: baseline_latency.queue_capacity,
            queries_per_level: baseline_latency.queries_per_level,
            ..LatencyOptions::default()
        },
        &baseline_latency.levels.iter().map(|&(c, _)| c).collect::<Vec<_>>(),
    );

    let repeated = run_repeated(&workload);

    let mut ok = compare(&run, &baseline, tolerance);
    ok &= compare_decode(&run.decode, &baseline_decode, tolerance);
    ok &= compare_latency(&latency, &baseline_latency);
    ok &= compare_server_agreement(&latency);
    ok &= compare_repeated(&repeated, &baseline_repeated);
    run.latency = Some(latency);
    run.repeated = Some(repeated);
    if !run.identical_rankings {
        eprintln!("ERROR: rankings diverged across execution modes");
        std::process::exit(1);
    }
    if let Some(path) = &out_path {
        std::fs::write(path, run.to_json())
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("# wrote fresh results to {path}");
    }
    if let Some(path) = &trace_out {
        eprintln!("# traced pass (serial + parallel_2, ring capacity {TRACE_CAPACITY})");
        let tracer = run_traced(&workload, TRACE_CAPACITY, 2);
        export_trace(&tracer, path).expect("write trace");
    }
    if ok {
        println!("perf gate: PASS");
    } else {
        println!("perf gate: FAIL");
        std::process::exit(1);
    }
}

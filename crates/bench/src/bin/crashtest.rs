//! Crash-consistency harness CLI.
//!
//! Runs [`poir_bench::crash::run_crash_harness`]: a seeded op script over a
//! recoverable Mneme store, crashed at every `stride`-th op boundary in
//! several ways (plain drop, flush-then-drop, torn log tail, device power
//! cut), recovered, validated, and compared bit-for-bit against the
//! no-crash reference ranking.
//!
//! ```text
//! cargo run --release -p poir-bench --bin crashtest -- \
//!     [--seed N] [--ops N] [--terms N] [--checkpoint-every N] \
//!     [--stride N] [--power-cuts N] [--k N]
//! ```
//!
//! Prints the report as one JSON object. Exits 0 when every recovery held,
//! 1 on any failure (the report lists each one), 2 on usage errors.

use poir_bench::crash::{run_crash_harness, CrashOptions};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = CrashOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |what: &str| -> u64 {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => v,
                None => die(&format!("{what} needs a non-negative integer")),
            }
        };
        match arg.as_str() {
            "--seed" => opts.seed = num("--seed"),
            "--ops" => opts.ops = num("--ops") as usize,
            "--terms" => opts.terms = num("--terms").max(1) as usize,
            "--checkpoint-every" => opts.checkpoint_every = num("--checkpoint-every") as usize,
            "--stride" => opts.stride = num("--stride").max(1) as usize,
            "--power-cuts" => opts.power_cuts = num("--power-cuts") as usize,
            "--k" => opts.k = num("--k").max(1) as usize,
            "--help" | "-h" => {
                eprintln!(
                    "usage: crashtest [--seed N] [--ops N] [--terms N] \
                     [--checkpoint-every N] [--stride N] [--power-cuts N] [--k N]"
                );
                return;
            }
            other => die(&format!("unknown arg {other:?}")),
        }
    }

    eprintln!(
        "# crashtest seed {:#x}: {} ops, {} terms, checkpoint every {}, stride {}, {} power cuts",
        opts.seed, opts.ops, opts.terms, opts.checkpoint_every, opts.stride, opts.power_cuts
    );
    let report = run_crash_harness(&opts);
    println!("{}", report.to_json());
    if !report.passed() {
        for f in &report.failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "# ok: {} crash points, {} recoveries, {} torn tails shortened, {} power cuts fired",
        report.crash_points,
        report.recoveries,
        report.torn_tails_shortened,
        report.power_cuts_fired
    );
}

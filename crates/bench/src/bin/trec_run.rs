//! Batch-mode query processing with TREC-format output.
//!
//! ```text
//! cargo run --release -p poir-bench --bin trec_run -- legal 2 /tmp/out --scale 0.1
//! ```
//!
//! Processes a collection's query set "in batch mode" (Section 4.2) on the
//! Mneme-cached configuration and writes `run.txt` (TREC run format) and
//! `qrels.txt` (relevance judgments) to the output directory — files any
//! standard IR evaluation tool (e.g. `trec_eval`) can consume.

use poir_bench::{build_index, paper_device, RunConfig};
use poir_collections::{generate_queries, judgments_for, SyntheticCollection};
use poir_core::{BackendKind, Engine};
use poir_inquery::{trec, ScoredDoc};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!(
            "usage: trec_run <cacm|legal|tipster1|tipster> <query-set-number> <out-dir> \
             [--scale F] [--backend btree|mneme_nocache|mneme_cache]"
        );
        std::process::exit(2);
    }
    let paper = match args[0].as_str() {
        "cacm" => poir_collections::cacm(),
        "legal" => poir_collections::legal(),
        "tipster1" => poir_collections::tipster1(),
        "tipster" => poir_collections::tipster(),
        other => {
            eprintln!("unknown collection {other:?}");
            std::process::exit(2);
        }
    };
    let qs_no: usize = args[1].parse().unwrap_or(1);
    let out_dir = std::path::PathBuf::from(&args[2]);
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let backend: BackendKind = args
        .iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            s.parse().unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            })
        })
        .unwrap_or(BackendKind::MnemeCache);
    let cfg = RunConfig { scale, top_k: 1000, ..RunConfig::default() };

    let scaled = paper.clone().scale(cfg.scale);
    let qs_spec = scaled.query_sets.get(qs_no.saturating_sub(1)).unwrap_or_else(|| {
        eprintln!("{} has {} query sets", scaled.spec.name, scaled.query_sets.len());
        std::process::exit(2);
    });
    eprintln!("indexing {} ({} docs) ...", scaled.spec.name, scaled.spec.num_docs);
    let collection = SyntheticCollection::new(scaled.spec.clone());
    let (index, _) = build_index(&collection);
    let docs = index.documents.clone();
    let device = paper_device();
    let mut engine = Engine::builder(&device).backend(backend).build(index).expect("engine build");

    let queries = generate_queries(&collection, qs_spec);
    let tag = format!("poir-{}", qs_spec.name.replace(' ', "-"));
    let mut run = String::new();
    let mut qrels = String::new();
    for (i, q) in queries.iter().enumerate() {
        let qid = format!("{}", i + 1);
        let ranked = engine.query(&q.text, cfg.top_k).expect("query");
        let scored: Vec<ScoredDoc> =
            ranked.iter().map(|r| ScoredDoc { doc: r.doc, score: r.score }).collect();
        run.push_str(&trec::format_run(&qid, &scored, &docs, &tag));
        qrels.push_str(&trec::format_qrels(&qid, &judgments_for(&collection, q), &docs));
    }
    std::fs::create_dir_all(&out_dir).expect("output directory");
    std::fs::write(out_dir.join("run.txt"), &run).expect("write run");
    std::fs::write(out_dir.join("qrels.txt"), &qrels).expect("write qrels");
    eprintln!(
        "wrote {} run lines and qrels for {} queries to {}",
        run.lines().count(),
        queries.len(),
        out_dir.display()
    );
}

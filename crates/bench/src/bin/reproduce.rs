//! Reproduces every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p poir-bench --bin reproduce -- all
//! cargo run --release -p poir-bench --bin reproduce -- table3 table5 --scale 0.25
//! ```
//!
//! Targets: `table1` `table2` `table3` `table4` `table5` `table6`
//! `fig1` `fig2` `fig3` `effectiveness` `all`.
//!
//! `--scale F` shrinks every collection's document count by `F`
//! (default 1.0 = the DESIGN.md §4 sizes).

use std::collections::BTreeSet;

use poir_bench::{fig1_points, fig2_points, fig3_sweep, print, run_all, RunConfig};
use poir_inquery::StopWords;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: BTreeSet<String> = BTreeSet::new();
    let mut scale = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive number"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: reproduce [table1..table6 fig1..fig3 effectiveness all] [--scale F]"
                );
                return;
            }
            t => {
                targets.insert(t.to_string());
            }
        }
        i += 1;
    }
    if targets.is_empty() || targets.contains("all") {
        targets = [
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "fig1",
            "fig2",
            "fig3",
            "effectiveness",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let cfg = RunConfig { scale, top_k: 100 };
    eprintln!(
        "# reproducing {:?} at scale {scale} (this generates, indexes, and queries all four collections)",
        targets
    );

    let needs_suite = targets.iter().any(|t| t != "fig3");
    let results = if needs_suite { run_all(&cfg) } else { Vec::new() };

    for t in &targets {
        match t.as_str() {
            "table1" => println!("{}", print::table1(&results)),
            "table2" => println!("{}", print::table2(&results)),
            "table3" => println!("{}", print::table3(&results)),
            "table4" => println!("{}", print::table4(&results)),
            "table5" => println!("{}", print::table5(&results)),
            "table6" => println!("{}", print::table6(&results)),
            "effectiveness" => println!("{}", print::effectiveness(&results)),
            "fig1" => {
                // The paper plots Figure 1 for the Legal collection.
                let legal = results
                    .iter()
                    .find(|r| r.label == "Legal")
                    .unwrap_or_else(|| die("fig1 needs the Legal collection"));
                println!("{}", print::fig1(&legal.label, &fig1_points(&legal.record_sizes)));
            }
            "fig2" => {
                // The paper plots Figure 2 for Legal Query Set 2.
                let legal = results
                    .iter()
                    .find(|r| r.label == "Legal")
                    .unwrap_or_else(|| die("fig2 needs the Legal collection"));
                let qs2 = &legal.query_sets[1];
                // Rebuild the index cheaply for record sizes: reuse stored sizes
                // via the suite's own fig2 pathway.
                let scaled = poir_collections::legal().scale(cfg.scale);
                let collection = poir_collections::SyntheticCollection::new(scaled.spec.clone());
                let (index, _) = poir_bench::build_index(&collection);
                let points = fig2_points(&index, &qs2.queries, &StopWords::default());
                println!("{}", print::fig2(&qs2.label, &points));
            }
            "fig3" => {
                // The paper sweeps the TIPSTER large-object buffer.
                let sweep = fig3_sweep(&poir_collections::tipster(), &cfg, 10);
                println!("{}", print::fig3("TIPSTER Query Set 1", &sweep));
            }
            other => eprintln!("# unknown target {other:?} skipped"),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

//! Reproduces every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p poir-bench --bin reproduce -- all
//! cargo run --release -p poir-bench --bin reproduce -- table3 table5 --scale 0.25
//! ```
//!
//! Targets: `table1` `table2` `table3` `table4` `table5` `table6`
//! `fig1` `fig2` `fig3` `effectiveness` `all`.
//!
//! `--scale F` shrinks every collection's document count by `F`
//! (default 1.0 = the DESIGN.md §4 sizes).
//!
//! `--metrics-json PATH` enables telemetry on every engine, cross-checks
//! the telemetry-derived Table 5 statistics against the device's `IoStats`
//! deltas (they must match exactly), and writes every query set's
//! `MetricsReport` — counters, per-pool buffer events, phase latency
//! histograms, per-query traces — to `PATH` as JSON. On divergence it
//! prints the full per-counter diff (every mirrored telemetry/IoStats
//! pair, matching and not) before aborting.
//!
//! `--trace-out PATH` runs an extra traced pass — the TIPSTER throughput
//! workload at the same `--scale`, serial then parallel on 2 threads, on a
//! tracing engine — and writes a Perfetto-loadable Chrome trace to `PATH`
//! plus a flat JSONL access log alongside it. The reproduction runs
//! themselves are unaffected.

use std::collections::BTreeSet;

use poir_bench::throughput::{export_trace, prepare_workload, run_traced};
use poir_bench::{fig1_points, fig2_points, fig3_sweep, print, run_all, RunConfig};
use poir_core::{BackendKind, TelemetryOptions};
use poir_inquery::StopWords;
use poir_telemetry::Event;

/// Ring-buffer capacity for the `--trace-out` pass.
const TRACE_CAPACITY: usize = 1 << 20;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: BTreeSet<String> = BTreeSet::new();
    let mut scale = 1.0f64;
    let mut metrics_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive number"));
            }
            "--metrics-json" => {
                i += 1;
                metrics_json = Some(
                    args.get(i).cloned().unwrap_or_else(|| die("--metrics-json needs a path")),
                );
            }
            "--trace-out" => {
                i += 1;
                trace_out =
                    Some(args.get(i).cloned().unwrap_or_else(|| die("--trace-out needs a path")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: reproduce [table1..table6 fig1..fig3 effectiveness all] \
                     [--scale F] [--metrics-json PATH] [--trace-out PATH]"
                );
                return;
            }
            t => {
                targets.insert(t.to_string());
            }
        }
        i += 1;
    }
    if targets.is_empty() || targets.contains("all") {
        targets = [
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "fig1",
            "fig2",
            "fig3",
            "effectiveness",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let telemetry =
        if metrics_json.is_some() { TelemetryOptions::full() } else { TelemetryOptions::off() };
    let cfg = RunConfig { scale, top_k: 100, telemetry };
    eprintln!(
        "# reproducing {:?} at scale {scale} (this generates, indexes, and queries all four collections)",
        targets
    );

    let needs_suite = targets.iter().any(|t| t != "fig3") || metrics_json.is_some();
    let results = if needs_suite { run_all(&cfg) } else { Vec::new() };

    for t in &targets {
        match t.as_str() {
            "table1" => println!("{}", print::table1(&results)),
            "table2" => println!("{}", print::table2(&results)),
            "table3" => println!("{}", print::table3(&results)),
            "table4" => println!("{}", print::table4(&results)),
            "table5" => println!("{}", print::table5(&results)),
            "table6" => println!("{}", print::table6(&results)),
            "effectiveness" => println!("{}", print::effectiveness(&results)),
            "fig1" => {
                // The paper plots Figure 1 for the Legal collection.
                let legal = results
                    .iter()
                    .find(|r| r.label == "Legal")
                    .unwrap_or_else(|| die("fig1 needs the Legal collection"));
                println!("{}", print::fig1(&legal.label, &fig1_points(&legal.record_sizes)));
            }
            "fig2" => {
                // The paper plots Figure 2 for Legal Query Set 2.
                let legal = results
                    .iter()
                    .find(|r| r.label == "Legal")
                    .unwrap_or_else(|| die("fig2 needs the Legal collection"));
                let qs2 = &legal.query_sets[1];
                // Rebuild the index cheaply for record sizes: reuse stored sizes
                // via the suite's own fig2 pathway.
                let scaled = poir_collections::legal().scale(cfg.scale);
                let collection = poir_collections::SyntheticCollection::new(scaled.spec.clone());
                let (index, _) = poir_bench::build_index(&collection);
                let points = fig2_points(&index, &qs2.queries, &StopWords::default());
                println!("{}", print::fig2(&qs2.label, &points));
            }
            "fig3" => {
                // The paper sweeps the TIPSTER large-object buffer.
                let sweep = fig3_sweep(&poir_collections::tipster(), &cfg, 10);
                println!("{}", print::fig3("TIPSTER Query Set 1", &sweep));
            }
            other => eprintln!("# unknown target {other:?} skipped"),
        }
    }

    if let Some(path) = metrics_json {
        write_metrics_json(&path, scale, &results);
    }

    if let Some(path) = trace_out {
        eprintln!(
            "# traced pass: TIPSTER throughput workload at scale {scale}, \
             serial + parallel_2, ring capacity {TRACE_CAPACITY}"
        );
        let workload = prepare_workload(scale);
        let tracer = run_traced(&workload, TRACE_CAPACITY, 2);
        export_trace(&tracer, &path).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
    }
}

/// Serializes every query set's telemetry to JSON, after verifying the
/// telemetry-derived Table 5 statistics (I, A, B) equal the `IoStats`
/// deltas the report measured independently.
fn write_metrics_json(path: &str, scale: f64, results: &[poir_bench::CollectionResults]) {
    let mut collections = Vec::new();
    for coll in results {
        let mut sets = Vec::new();
        for qs in &coll.query_sets {
            let mut backends = Vec::new();
            for (backend, report) in BackendKind::all().iter().zip(&qs.reports) {
                let metrics = report.metrics.as_ref().unwrap_or_else(|| {
                    die("telemetry was enabled but the report carries no metrics")
                });
                // Every counter the telemetry layer mirrors from IoStats,
                // plus the engine-side lookup count. On any divergence the
                // whole table prints (matching rows included) so the shape
                // of the drift is visible, not just its first symptom.
                let pairs: [(&str, u64, u64); 7] = [
                    (
                        "file_accesses",
                        metrics.delta.get(Event::FileAccess),
                        report.io.file_accesses,
                    ),
                    ("file_writes", metrics.delta.get(Event::FileWrite), report.io.file_writes),
                    ("bytes_read", metrics.delta.get(Event::BytesRead), report.io.bytes_read),
                    (
                        "bytes_written",
                        metrics.delta.get(Event::BytesWritten),
                        report.io.bytes_written,
                    ),
                    ("io_inputs", metrics.delta.get(Event::IoInput), report.io.io_inputs),
                    ("io_outputs", metrics.delta.get(Event::IoOutput), report.io.io_outputs),
                    (
                        "record_lookups",
                        metrics.delta.get(Event::RecordLookup),
                        report.record_lookups,
                    ),
                ];
                if pairs.iter().any(|&(_, t, io)| t != io) {
                    eprintln!(
                        "telemetry mismatch for {} / {} / {}:",
                        coll.label, qs.label, backend
                    );
                    eprintln!(
                        "  {:<16} {:>14} {:>14} {:>10}",
                        "counter", "telemetry", "iostats", "delta"
                    );
                    for (name, telem, io) in pairs {
                        eprintln!(
                            "  {:<16} {:>14} {:>14} {:>10}  {}",
                            name,
                            telem,
                            io,
                            telem as i64 - io as i64,
                            if telem == io { "ok" } else { "MISMATCH" },
                        );
                    }
                    die("telemetry counters diverged from IoStats");
                }
                backends.push(format!(
                    "{{\"backend\":\"{backend}\",\"metrics\":{}}}",
                    metrics.to_json()
                ));
            }
            sets.push(format!(
                "{{\"label\":{:?},\"backends\":[{}]}}",
                qs.label,
                backends.join(",")
            ));
        }
        collections.push(format!(
            "{{\"label\":{:?},\"query_sets\":[{}]}}",
            coll.label,
            sets.join(",")
        ));
    }
    let json = format!("{{\"scale\":{scale},\"collections\":[{}]}}\n", collections.join(","));
    std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
    eprintln!("# telemetry counters match IoStats exactly; wrote {path}");
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

//! Benchmark harness reproducing the paper's evaluation (Section 4).
//!
//! [`run_collection`] performs the full measurement procedure for one
//! collection: generate the synthetic stand-in, build the index once, load
//! it into all three storage configurations, and process every query set
//! against each — capturing the raw data behind Tables 1 and 3-6.
//! [`fig1_points`], [`fig2_points`], and [`fig3_sweep`] produce the
//! figures; the [`mod@print`] module renders everything in the paper's layout.
//!
//! The `reproduce` binary drives the whole suite:
//! `cargo run --release -p poir-bench --bin reproduce -- all`.

pub mod crash;
pub mod json;
pub mod latency;
pub mod print;
pub mod repeated;
pub mod throughput;

use std::sync::Arc;

use poir_collections::{
    generate_queries, judgments_for, GeneratedQuery, PaperCollection, SyntheticCollection,
};
use poir_core::{BackendKind, BufferSizes, Engine, QuerySetReport, TelemetryOptions};
use poir_inquery::{Index, IndexBuilder, StopWords};
use poir_storage::{CostModel, Device, DeviceConfig};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Collection scale factor (1.0 = the DESIGN.md §4 sizes).
    pub scale: f64,
    /// Documents retrieved per query.
    pub top_k: usize,
    /// Telemetry switches for every engine the harness builds (off by
    /// default; enabling it populates [`QuerySetReport::metrics`]).
    pub telemetry: TelemetryOptions,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { scale: 1.0, top_k: 100, telemetry: TelemetryOptions::off() }
    }
}

/// A fresh simulated device with the paper-platform configuration.
pub fn paper_device() -> Arc<Device> {
    Device::new(DeviceConfig {
        block_size: 8192,
        // The ULTRIX buffer cache was a handful of Mbytes against multi-
        // hundred-Mbyte collections; our collections are scaled ~10-20x
        // down (DESIGN.md §4), so the simulated cache scales with them:
        // 128 blocks = 1 MB.
        os_cache_blocks: 128,
        cost_model: CostModel::default(),
    })
}

/// Generates and indexes a collection, returning the index and the total
/// raw text size in bytes.
pub fn build_index(collection: &SyntheticCollection) -> (Index, u64) {
    let mut builder = IndexBuilder::new(StopWords::default());
    let mut raw_bytes = 0u64;
    for doc in collection.documents() {
        raw_bytes += doc.text.len() as u64;
        builder.add_document(&doc.name, &doc.text);
    }
    (builder.finish(), raw_bytes)
}

/// Results of one query set across the three configurations.
#[derive(Debug)]
pub struct QuerySetResults {
    /// Query set label ("Legal QS2").
    pub label: String,
    /// The generated queries.
    pub queries: Vec<GeneratedQuery>,
    /// Reports in [`BackendKind::all`] order: B-tree, Mneme no-cache,
    /// Mneme cache.
    pub reports: [QuerySetReport; 3],
    /// Mean average precision (identical across configurations — the
    /// ranking component is fixed; computed once on the cached engine).
    pub mean_avg_precision: f64,
}

/// Results of one collection across the three configurations.
#[derive(Debug)]
pub struct CollectionResults {
    /// Collection label.
    pub label: String,
    /// Documents indexed.
    pub num_docs: usize,
    /// Raw collection text size in Kbytes (Table 1 "Collection Size").
    pub collection_kbytes: u64,
    /// Number of inverted records (Table 1 "# of Records").
    pub record_count: usize,
    /// Record sizes in bytes (Figure 1 / pool population data).
    pub record_sizes: Vec<usize>,
    /// B-tree file size in Kbytes (Table 1).
    pub btree_kbytes: u64,
    /// Mneme file size in Kbytes (Table 1).
    pub mneme_kbytes: u64,
    /// The Table 2 buffer sizes used by the cached configuration.
    pub buffer_sizes: BufferSizes,
    /// Per-query-set measurements.
    pub query_sets: Vec<QuerySetResults>,
}

/// Runs the full paper procedure for one collection.
pub fn run_collection(paper: &PaperCollection, cfg: &RunConfig) -> CollectionResults {
    let scaled = paper.clone().scale(cfg.scale);
    let collection = SyntheticCollection::new(scaled.spec.clone());
    let (index, raw_bytes) = build_index(&collection);
    let record_sizes = index.record_sizes();
    let record_count = index.records.len();

    // One engine per configuration, each on its own device so the I/O
    // counters are independent (the paper ran the versions separately).
    let mut engines: Vec<Engine> = BackendKind::all()
        .into_iter()
        .map(|backend| {
            let device = paper_device();
            Engine::builder(&device)
                .backend(backend)
                .telemetry(cfg.telemetry)
                .build(index.clone())
                .expect("engine build")
        })
        .collect();
    let btree_kbytes = engines[0].store_file_size().expect("btree size") / 1024;
    let mneme_kbytes = engines[2].store_file_size().expect("mneme size") / 1024;
    let buffer_sizes = engines[2].paper_buffer_sizes().expect("buffer sizes");

    let mut query_sets = Vec::with_capacity(scaled.query_sets.len());
    for qs_spec in &scaled.query_sets {
        let queries = generate_queries(&collection, qs_spec);
        let texts: Vec<&str> = queries.iter().map(|q| q.text.as_str()).collect();
        let reports: Vec<QuerySetReport> = engines
            .iter_mut()
            .map(|e| e.run_query_set(&texts, cfg.top_k).expect("query set run"))
            .collect();
        let reports: [QuerySetReport; 3] = reports.try_into().expect("three configurations");
        // Effectiveness (identical across configurations by construction).
        let mut aps = Vec::with_capacity(queries.len());
        for q in &queries {
            let ranked = engines[2].query(&q.text, cfg.top_k).expect("query");
            let scored: Vec<poir_inquery::ScoredDoc> = ranked
                .iter()
                .map(|r| poir_inquery::ScoredDoc { doc: r.doc, score: r.score })
                .collect();
            aps.push(judgments_for(&collection, q).average_precision(&scored));
        }
        query_sets.push(QuerySetResults {
            label: qs_spec.name.clone(),
            queries,
            reports,
            mean_avg_precision: poir_inquery::metrics::mean(&aps),
        });
    }

    CollectionResults {
        label: scaled.spec.name.clone(),
        num_docs: scaled.spec.num_docs,
        collection_kbytes: raw_bytes / 1024,
        record_count,
        record_sizes,
        btree_kbytes,
        mneme_kbytes,
        buffer_sizes,
        query_sets,
    }
}

/// Figure 1: cumulative distribution of inverted-list sizes, as
/// `(size, % of records ≤ size, % of file bytes in records ≤ size)`.
pub fn fig1_points(record_sizes: &[usize]) -> Vec<(usize, f64, f64)> {
    let mut sorted = record_sizes.to_vec();
    sorted.sort_unstable();
    let total_records = sorted.len().max(1) as f64;
    let total_bytes: u64 = sorted.iter().map(|&s| s as u64).sum();
    let mut points = Vec::new();
    let mut size = 1usize;
    let mut idx = 0usize;
    let mut bytes_so_far = 0u64;
    let max = sorted.last().copied().unwrap_or(1);
    while size <= max * 2 {
        while idx < sorted.len() && sorted[idx] <= size {
            bytes_so_far += sorted[idx] as u64;
            idx += 1;
        }
        points.push((
            size,
            100.0 * idx as f64 / total_records,
            100.0 * bytes_so_far as f64 / total_bytes.max(1) as f64,
        ));
        size *= 2;
    }
    points
}

/// Figure 2: frequency of use of different inverted-list record sizes for
/// one query set, as `(record size in bytes, number of uses)` pairs (one
/// per distinct term used).
pub fn fig2_points(
    index: &Index,
    queries: &[GeneratedQuery],
    stop: &StopWords,
) -> Vec<(usize, u32)> {
    use std::collections::HashMap;
    let mut uses: HashMap<poir_inquery::TermId, u32> = HashMap::new();
    for q in queries {
        let Ok(parsed) = poir_inquery::parse_query(&q.text, stop) else { continue };
        for term in parsed.leaf_terms() {
            if let Some(id) = index.dictionary.lookup(term) {
                *uses.entry(id).or_insert(0) += 1;
            }
        }
    }
    let mut points: Vec<(usize, u32)> =
        uses.into_iter().map(|(id, n)| (index.records[id.0 as usize].1.len(), n)).collect();
    points.sort_unstable();
    points
}

/// Figure 3: large-object buffer hit rate over a range of buffer sizes for
/// one collection + query set. Returns `(large buffer bytes, hit rate)`.
pub fn fig3_sweep(paper: &PaperCollection, cfg: &RunConfig, points: usize) -> Vec<(usize, f64)> {
    let scaled = paper.clone().scale(cfg.scale);
    let collection = SyntheticCollection::new(scaled.spec.clone());
    let (index, _) = build_index(&collection);
    let device = paper_device();
    let mut engine = Engine::builder(&device)
        .backend(BackendKind::MnemeCache)
        .build(index)
        .expect("engine build");
    let base = engine.paper_buffer_sizes().expect("buffer sizes");
    let queries = generate_queries(&collection, &scaled.query_sets[0]);
    let texts: Vec<&str> = queries.iter().map(|q| q.text.as_str()).collect();
    // Sweep the large buffer from a fraction of one large object to several
    // times the heuristic size, holding small/medium at their Table 2 sizes.
    let max = base.large * 2;
    let mut out = Vec::with_capacity(points);
    for i in 1..=points {
        let large = max * i / points;
        engine
            .set_buffer_sizes(BufferSizes { small: base.small, medium: base.medium, large })
            .expect("buffer resize");
        let report = engine.run_query_set(&texts, cfg.top_k).expect("sweep run");
        let stats = report.buffer_stats.expect("mneme stats");
        out.push((large, stats[2].hit_rate()));
    }
    out
}

/// Convenience: run every paper collection.
pub fn run_all(cfg: &RunConfig) -> Vec<CollectionResults> {
    poir_collections::paper_collections().iter().map(|p| run_collection(p, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RunConfig {
        RunConfig { scale: 0.02, top_k: 20, ..RunConfig::default() }
    }

    #[test]
    fn cacm_run_produces_consistent_results() {
        let results = run_collection(&poir_collections::cacm(), &quick_cfg());
        assert_eq!(results.query_sets.len(), 3);
        assert!(results.record_count > 100);
        assert_eq!(results.record_sizes.len(), results.record_count);
        assert!(results.btree_kbytes > 0);
        assert!(results.mneme_kbytes > 0);
        for qs in &results.query_sets {
            assert_eq!(qs.reports[0].queries, 50);
            // Identical lookup counts across configurations.
            assert_eq!(qs.reports[0].record_lookups, qs.reports[1].record_lookups);
            assert_eq!(qs.reports[1].record_lookups, qs.reports[2].record_lookups);
        }
    }

    #[test]
    fn fig1_points_are_monotone_and_reach_100() {
        let sizes = vec![4usize, 8, 8, 100, 5000, 5000, 200_000];
        let points = fig1_points(&sizes);
        assert!(points.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].2 <= w[1].2));
        let last = points.last().unwrap();
        assert!((last.1 - 100.0).abs() < 1e-9);
        assert!((last.2 - 100.0).abs() < 1e-9);
        // Small records dominate counts but not bytes.
        let at_16 = points.iter().find(|p| p.0 == 16).unwrap();
        assert!(at_16.1 > 40.0);
        assert!(at_16.2 < 1.0);
    }

    #[test]
    fn fig2_reflects_query_usage() {
        let collection = SyntheticCollection::new(poir_collections::CollectionSpec::tiny(3));
        let (index, _) = build_index(&collection);
        let spec = poir_collections::QuerySetSpec {
            name: "t".into(),
            style: poir_collections::QueryStyle::NaturalLanguage,
            num_queries: 20,
            mean_terms: 6,
            reuse_rate: 0.5,
            seed: 4,
        };
        let queries = generate_queries(&collection, &spec);
        let points = fig2_points(&index, &queries, &StopWords::default());
        assert!(!points.is_empty());
        // Repetition must show up as multi-use terms.
        assert!(points.iter().any(|&(_, uses)| uses > 1));
        assert!(points.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn fig3_sweep_hit_rate_grows_with_buffer() {
        let sweep = fig3_sweep(&poir_collections::cacm(), &quick_cfg(), 4);
        assert_eq!(sweep.len(), 4);
        assert!(sweep.windows(2).all(|w| w[0].0 < w[1].0));
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(last >= first, "hit rate must not fall as the buffer grows");
    }
}

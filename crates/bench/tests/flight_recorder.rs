//! Slow-query flight-recorder dump format, checked end to end: records
//! built the way the service builds them, dumped as JSONL, and parsed
//! back through the bench JSON reader CI uses for schema checks.

use poir_bench::json::Json;
use poir_telemetry::trace::{NO_POOL, NO_QUERY};
use poir_telemetry::{
    FlightRecorder, LatencyBreakdown, SlowQueryRecord, SlowShard, TraceOp, TraceRecord,
};

fn record(query_id: u32, seq: u32, total: u64) -> SlowQueryRecord {
    SlowQueryRecord {
        query_id,
        seq,
        mode: "daat_pruned".to_string(),
        k: 10,
        breakdown: LatencyBreakdown::from_parts(query_id, total / 4, total / 2, total / 8, total),
        shards: vec![
            SlowShard { shard: 0, micros: total / 4, hits: 10 },
            SlowShard { shard: 1, micros: total / 4, hits: 7 },
        ],
        trace: vec![
            // A queue-wait point event, no pool — `pool` must render null.
            TraceRecord {
                ts_micros: 10,
                dur_micros: total / 4,
                thread: 1,
                query: query_id,
                op: TraceOp::QueueWait,
                object: query_id as u64,
                pool: NO_POOL,
                bytes: 0,
            },
            // A pool fetch with a real pool index.
            TraceRecord {
                ts_micros: 20,
                dur_micros: 5,
                thread: 1,
                query: query_id,
                op: TraceOp::PoolFetch,
                object: 42,
                pool: 2,
                bytes: 64,
            },
            // And one emitted outside any query — `query` renders null.
            TraceRecord {
                ts_micros: 30,
                dur_micros: 0,
                thread: 2,
                query: NO_QUERY,
                op: TraceOp::DeviceRead,
                object: 8192,
                pool: NO_POOL,
                bytes: 8192,
            },
        ],
    }
}

#[test]
fn jsonl_dump_round_trips_through_bench_json() {
    let recorder = FlightRecorder::new(8, 100);
    recorder.offer(record(7, 0, 900));
    recorder.offer(record(3, 1, 400));
    recorder.offer(record(5, 2, 1600));
    let dump = recorder.dump_jsonl();
    let lines: Vec<&str> = dump.lines().collect();
    assert_eq!(lines.len(), 3);

    // Deterministic slowest-first order.
    let totals: Vec<u64> = lines
        .iter()
        .map(|l| {
            Json::parse(l)
                .expect("slow-query line parses")
                .get("total_micros")
                .and_then(Json::as_u64)
                .expect("total_micros")
        })
        .collect();
    assert_eq!(totals, vec![1600, 900, 400]);

    // Full schema of the slowest entry, the way CI reads it.
    let doc = Json::parse(lines[0]).unwrap();
    assert_eq!(doc.get("query_id").and_then(Json::as_u64), Some(5));
    assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("daat_pruned"));
    assert_eq!(doc.get("k").and_then(Json::as_u64), Some(10));
    let queue = doc.get("queue_micros").and_then(Json::as_u64).unwrap();
    let eval = doc.get("eval_micros").and_then(Json::as_u64).unwrap();
    let merge = doc.get("merge_micros").and_then(Json::as_u64).unwrap();
    let other = doc.get("other_micros").and_then(Json::as_u64).unwrap();
    assert_eq!(queue + eval + merge + other, 1600, "components sum to the total");

    let shards = doc.get("shards").and_then(Json::as_arr).unwrap();
    assert_eq!(shards.len(), 2);
    assert_eq!(shards[0].get("shard").and_then(Json::as_u64), Some(0));
    assert_eq!(shards[1].get("hits").and_then(Json::as_u64), Some(7));

    let trace = doc.get("trace").and_then(Json::as_arr).unwrap();
    assert_eq!(trace.len(), 3);
    assert_eq!(trace[0].get("op").and_then(Json::as_str), Some("queue_wait"));
    assert_eq!(trace[0].get("query").and_then(Json::as_u64), Some(5));
    assert!(trace[0].get("pool").unwrap().as_u64().is_none(), "NO_POOL renders null");
    assert_eq!(trace[1].get("pool").and_then(Json::as_u64), Some(2));
    assert_eq!(trace[1].get("bytes").and_then(Json::as_u64), Some(64));
    assert!(trace[2].get("query").unwrap().as_u64().is_none(), "NO_QUERY renders null");
}

#[test]
fn dump_is_empty_below_threshold_and_bounded_above_capacity() {
    let recorder = FlightRecorder::new(2, 500);
    recorder.offer(record(1, 0, 499));
    assert!(recorder.dump_jsonl().is_empty(), "sub-threshold requests never enter");
    for i in 0..10u32 {
        recorder.offer(record(i, i, 500 + 100 * i as u64));
    }
    assert_eq!(recorder.observed(), 10, "observed counts every at-threshold offer");
    let dump = recorder.dump_jsonl();
    assert_eq!(dump.lines().count(), 2, "dump is bounded by capacity");
    let first = Json::parse(dump.lines().next().unwrap()).unwrap();
    assert_eq!(first.get("total_micros").and_then(Json::as_u64), Some(1400));
}

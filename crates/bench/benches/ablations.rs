//! Ablation studies of the design choices the paper calls out.
//!
//! Run with `cargo bench -p poir-bench --bench ablations`. Each section
//! varies exactly one decision from Section 3.3 / Section 6 and reports the
//! same counters the paper uses:
//!
//! 1. medium-pool physical segment size (8 KB "based on the disk I/O block
//!    size"),
//! 2. one large-object buffer vs. a partitioned pair ("the best hit rates
//!    were achieved with a single buffer of the same total size"),
//! 3. the query-tree reservation optimization,
//! 4. the dedicated 16-byte-slot small pool vs. packing small lists into
//!    the medium pool,
//! 5. redo-log recovery overhead on the read-dominated workload ("the
//!    addition of these services would not introduce excessive overhead"),
//! 6. the ~60% record compression claim.

use poir_bench::{build_index, paper_device};
use poir_collections::{generate_queries, SyntheticCollection};
use poir_core::{BackendKind, Engine, MnemeInvertedFile, MnemeOptions};
use poir_inquery::{InvertedFileStore, InvertedRecord, StopWords};
use poir_mneme::{
    Buffer, BufferPolicy, LruBuffer, MnemeFile, PoolConfig, PoolId, PoolKindConfig, SegmentAddr,
    SegmentImage,
};

fn scale() -> f64 {
    std::env::var("POIR_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.15)
}

/// The fetch trace of a query set: each entry is one term lookup (by term
/// id; replays map ids to the store references of the build under test).
fn fetch_trace(
    index: &poir_inquery::Index,
    queries: &[poir_collections::GeneratedQuery],
) -> Vec<Vec<poir_inquery::TermId>> {
    let stop = StopWords::default();
    queries
        .iter()
        .filter_map(|q| poir_inquery::parse_query(&q.text, &stop).ok())
        .map(|parsed| {
            parsed.leaf_terms().into_iter().filter_map(|t| index.dictionary.lookup(t)).collect()
        })
        .collect()
}

fn ablation_segment_size() {
    println!("## Ablation 1: medium-pool physical segment size (Legal QS1 fetch trace)");
    println!("{:>10} {:>10} {:>8} {:>12} {:>14}", "Segment", "I", "A", "B (KB)", "sys+I/O (s)");
    let paper = poir_collections::legal().scale(scale());
    let collection = SyntheticCollection::new(paper.spec.clone());
    let (index, _) = build_index(&collection);
    let queries = generate_queries(&collection, &paper.query_sets[0]);
    let trace = fetch_trace(&index, &queries);
    for segment in [2048usize, 4096, 8192, 16384, 32768] {
        let device = paper_device();
        let mut dict = index.dictionary.clone();
        let mut store = MnemeInvertedFile::build(
            device.create_file(),
            MnemeOptions { medium_segment: segment, num_buckets: 0 },
            &index.records,
            &mut dict,
        )
        .expect("build");
        store
            .attach_buffers(poir_core::paper_heuristic(store.largest_record(), segment))
            .expect("buffers");
        device.chill();
        let before = device.stats().snapshot();
        let mut lookups = 0u64;
        for query in &trace {
            for &id in query {
                store.fetch(dict.entry(id).store_ref).expect("fetch");
                lookups += 1;
            }
        }
        let delta = device.stats().snapshot().since(&before);
        println!(
            "{:>9}B {:>10} {:>8.2} {:>12} {:>14.2}",
            segment,
            delta.io_inputs,
            delta.file_accesses as f64 / lookups as f64,
            delta.kbytes_read(),
            device.cost_model().charge(&delta).as_secs_f64()
        );
    }
    println!();
}

fn ablation_split_large_buffer() {
    println!("## Ablation 2: single vs. partitioned large-object buffer (TIPSTER QS1 trace)");
    let paper = poir_collections::tipster().scale(scale());
    let collection = SyntheticCollection::new(paper.spec.clone());
    let (index, _) = build_index(&collection);
    let queries = generate_queries(&collection, &paper.query_sets[0]);
    // Build the large-object access trace: (synthetic addr, object bytes).
    let stop = StopWords::default();
    let mut trace: Vec<(u64, usize)> = Vec::new();
    for q in &queries {
        let Ok(parsed) = poir_inquery::parse_query(&q.text, &stop) else { continue };
        for t in parsed.leaf_terms() {
            if let Some(id) = index.dictionary.lookup(t) {
                let len = index.records[id.0 as usize].1.len();
                if len > poir_core::LARGE_MIN {
                    trace.push((id.0 as u64, len));
                }
            }
        }
    }
    let largest = trace.iter().map(|&(_, l)| l).max().unwrap_or(1);
    let total = 3 * largest;
    // Split threshold: the median large-object size.
    let mut sizes: Vec<usize> = trace.iter().map(|&(_, l)| l).collect();
    sizes.sort_unstable();
    let threshold = sizes.get(sizes.len() / 2).copied().unwrap_or(largest);
    let replay = |buffers: &mut [(usize, Box<dyn Buffer>)]| -> (u64, u64) {
        let mut refs = 0u64;
        let mut hits = 0u64;
        for &(key, len) in &trace {
            let class = usize::from(len > threshold).min(buffers.len() - 1);
            let buffer = &mut buffers[class].1;
            let addr = SegmentAddr { offset: key * (1 << 24), len: len as u32 };
            refs += 1;
            if buffer.lookup(addr).is_some() {
                hits += 1;
            } else {
                buffer.insert(addr, SegmentImage::from_disk(vec![0u8; len]));
            }
        }
        (refs, hits)
    };
    let mut single: Vec<(usize, Box<dyn Buffer>)> = vec![(0, Box::new(LruBuffer::new(total)))];
    let (refs, hits_single) = replay(&mut single);
    let mut split: Vec<(usize, Box<dyn Buffer>)> =
        vec![(0, Box::new(LruBuffer::new(total / 2))), (1, Box::new(LruBuffer::new(total / 2)))];
    let (_, hits_split) = replay(&mut split);
    println!("{:>24} {:>8} {:>8} {:>8}", "Configuration", "Refs", "Hits", "Rate");
    println!(
        "{:>24} {:>8} {:>8} {:>8.3}",
        "single buffer",
        refs,
        hits_single,
        hits_single as f64 / refs.max(1) as f64
    );
    println!(
        "{:>24} {:>8} {:>8} {:>8.3}",
        "two half-size buffers",
        refs,
        hits_split,
        hits_split as f64 / refs.max(1) as f64
    );
    println!();
}

fn ablation_reservation() {
    println!("## Ablation 3: query-tree reservation optimization (Legal QS2)");
    let paper = poir_collections::legal().scale(scale());
    let collection = SyntheticCollection::new(paper.spec.clone());
    let (index, _) = build_index(&collection);
    let queries = generate_queries(&collection, &paper.query_sets[1]);
    let texts: Vec<&str> = queries.iter().map(|q| q.text.as_str()).collect();
    println!("{:>16} {:>8} {:>8} {:>8}", "Reservation", "Refs", "Hits", "Rate");
    for enabled in [true, false] {
        let device = paper_device();
        let mut engine = Engine::builder(&device)
            .backend(BackendKind::MnemeCache)
            .build(index.clone())
            .expect("engine");
        engine.set_reservation_enabled(enabled);
        let report = engine.run_query_set(&texts, 100).expect("run");
        let stats = report.buffer_stats.expect("stats");
        let refs: u64 = stats.iter().map(|s| s.refs).sum();
        let hits: u64 = stats.iter().map(|s| s.hits).sum();
        println!(
            "{:>16} {:>8} {:>8} {:>8.3}",
            if enabled { "on" } else { "off" },
            refs,
            hits,
            hits as f64 / refs.max(1) as f64
        );
    }
    println!();
}

fn ablation_small_pool() {
    println!("## Ablation 4: dedicated small pool vs. packing smalls into the medium pool");
    let paper = poir_collections::cacm().scale(scale().max(0.5));
    let collection = SyntheticCollection::new(paper.spec.clone());
    let (index, _) = build_index(&collection);
    let smalls: Vec<&Vec<u8>> =
        index.records.iter().map(|(_, r)| r).filter(|r| r.len() <= 12).collect();
    println!("(collection: {} records, {} small)", index.records.len(), smalls.len());
    println!("{:>28} {:>14} {:>14}", "Configuration", "File KB", "Aux KB");
    for (label, with_small_pool) in [("three pools (paper)", true), ("no small pool", false)] {
        let device = paper_device();
        let pools = if with_small_pool {
            vec![
                PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
                PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 8192 } },
                PoolConfig {
                    id: PoolId(2),
                    kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
                },
            ]
        } else {
            vec![
                PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 8192 } },
                PoolConfig {
                    id: PoolId(2),
                    kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
                },
            ]
        };
        let mut file = MnemeFile::create(device.create_file(), &pools, 64).expect("create");
        for (_, record) in &index.records {
            let pool = if with_small_pool {
                poir_core::pool_for(record.len())
            } else if record.len() > poir_core::LARGE_MIN {
                PoolId(2)
            } else {
                PoolId(1)
            };
            file.create_object(pool, record).expect("create object");
        }
        file.flush().expect("flush");
        println!(
            "{:>28} {:>14} {:>14}",
            label,
            file.file_size().expect("size") / 1024,
            file.aux_table_bytes() / 1024
        );
    }
    println!();
}

fn ablation_recovery() {
    println!("## Ablation 5: redo-log recovery overhead (read-dominated workload)");
    let device_plain = paper_device();
    let device_rec = paper_device();
    let pools =
        vec![PoolConfig { id: PoolId(0), kind: PoolKindConfig::Packed { segment_size: 8192 } }];
    let mut plain = MnemeFile::create(device_plain.create_file(), &pools, 16).expect("create");
    let rec_inner = MnemeFile::create(device_rec.create_file(), &pools, 16).expect("create");
    let mut rec = poir_mneme::recovery::RecoverableFile::new(rec_inner, device_rec.create_file())
        .expect("recoverable");
    let payload = vec![7u8; 200];
    let mut plain_ids = Vec::new();
    let mut rec_ids = Vec::new();
    for _ in 0..2000 {
        plain_ids.push(plain.create_object(PoolId(0), &payload).expect("create"));
        rec_ids.push(rec.create_object(PoolId(0), &payload).expect("create"));
    }
    plain.flush().expect("flush");
    rec.checkpoint().expect("checkpoint");
    // Phase 1: the paper's workload — "predominately read-only".
    device_plain.chill();
    device_rec.chill();
    let before_plain = device_plain.stats().snapshot();
    let before_rec = device_rec.stats().snapshot();
    for i in 0..20_000usize {
        let idx = (i * 7919) % plain_ids.len();
        plain.get(plain_ids[idx]).expect("get");
        rec.get(rec_ids[idx]).expect("get");
    }
    let d_plain = device_plain.stats().snapshot().since(&before_plain);
    let d_rec = device_rec.stats().snapshot().since(&before_rec);
    let read_plain = device_plain.cost_model().charge(&d_plain).as_secs_f64();
    let read_rec = device_rec.cost_model().charge(&d_rec).as_secs_f64();
    // Phase 2: updates, where the redo log actually writes.
    let before_plain = device_plain.stats().snapshot();
    let before_rec = device_rec.stats().snapshot();
    for i in 0..200usize {
        let idx = (i * 131) % plain_ids.len();
        plain.update(plain_ids[idx], &payload).expect("update");
        rec.update(rec_ids[idx], &payload).expect("update");
    }
    let d_plain = device_plain.stats().snapshot().since(&before_plain);
    let d_rec = device_rec.stats().snapshot().since(&before_rec);
    let upd_plain = device_plain.cost_model().charge(&d_plain).as_secs_f64();
    let upd_rec = device_rec.cost_model().charge(&d_rec).as_secs_f64();
    println!("{:>16} {:>18} {:>18}", "Configuration", "20k reads (s)", "200 updates (s)");
    println!("{:>16} {:>18.3} {:>18.3}", "no recovery", read_plain, upd_plain);
    println!("{:>16} {:>18.3} {:>18.3}", "redo log", read_rec, upd_rec);
    println!(
        "read-path overhead: {:.1}%; update overhead: {:.1}% (Section 6: reads are \
         untouched, so the read-dominated workload sees no excessive overhead)",
        100.0 * (read_rec - read_plain) / read_plain.max(1e-9),
        100.0 * (upd_rec - upd_plain) / upd_plain.max(1e-9)
    );
    println!();
}

fn ablation_compression() {
    println!("## Ablation 6: record compression rate (paper reports ~60% average)");
    let paper = poir_collections::legal().scale(scale());
    let collection = SyntheticCollection::new(paper.spec.clone());
    let (index, _) = build_index(&collection);
    let mut compressed = 0u64;
    let mut raw = 0u64;
    for (_, bytes) in &index.records {
        let record = InvertedRecord::decode(bytes).expect("decode");
        compressed += bytes.len() as u64;
        // Uncompressed form: header + (doc, tf) pairs + positions as u32s.
        raw += 12 + record.postings.iter().map(|p| 8 + 4 * p.positions.len() as u64).sum::<u64>();
    }
    println!(
        "compressed {} KB, raw {} KB, compression rate {:.0}%",
        compressed / 1024,
        raw / 1024,
        100.0 * (1.0 - compressed as f64 / raw as f64)
    );
    println!();
}

fn ablation_buffer_policy() {
    println!("## Ablation 7: buffer replacement policy — LRU vs. clock vs. S3-FIFO");
    // The conclusions invite investigating "other store and buffer
    // organizations"; every policy implements the same Buffer trait. Two
    // traces: the plain QS1 replay (each query once — a scan-ish sweep),
    // and a Zipfian repeated-query replay (head-heavy, the serving
    // family's shape), where scan resistance starts to matter.
    let paper = poir_collections::tipster().scale(scale());
    let collection = SyntheticCollection::new(paper.spec.clone());
    let (index, _) = build_index(&collection);
    let queries = generate_queries(&collection, &paper.query_sets[0]);
    let largest = index.record_sizes().into_iter().max().unwrap_or(1);
    let sizes = poir_core::paper_heuristic(largest, 8192);

    let qs1 = fetch_trace(&index, &queries);
    // The same deterministic Zipfian draw the repeated-query bench family
    // uses (s = 1.0 over the head of the query set, 8x repetition).
    let distinct = queries.len().clamp(1, 40);
    let mut cumulative = Vec::with_capacity(distinct);
    let mut total = 0.0f64;
    for rank in 0..distinct {
        total += 1.0 / (rank + 1) as f64;
        cumulative.push(total);
    }
    let mut state = 0x9E3779B97F4A7C15u64;
    let zipf: Vec<Vec<poir_inquery::TermId>> = (0..distinct * 8)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
            let qi = cumulative.partition_point(|&c| c < u).min(distinct - 1);
            qs1[qi % qs1.len()].clone()
        })
        .collect();

    let replay = |policy: &str, trace: &[Vec<poir_inquery::TermId>]| -> (u64, u64) {
        let device = paper_device();
        let mut dict = index.dictionary.clone();
        let mut store = MnemeInvertedFile::build(
            device.create_file(),
            MnemeOptions::default(),
            &index.records,
            &mut dict,
        )
        .expect("build");
        let make = |cap: usize| -> Box<dyn Buffer> {
            policy.parse::<BufferPolicy>().expect("policy name").build(cap)
        };
        let file = store.mneme();
        file.attach_buffer(PoolId(0), make(sizes.small)).expect("small");
        file.attach_buffer(PoolId(1), make(sizes.medium)).expect("medium");
        file.attach_buffer(PoolId(2), make(sizes.large)).expect("large");
        device.chill();
        for query in trace {
            for &id in query {
                store.fetch(dict.entry(id).store_ref).expect("fetch");
            }
        }
        let stats = store.buffer_stats().expect("stats");
        (stats.iter().map(|s| s.refs).sum(), stats.iter().map(|s| s.hits).sum())
    };

    for (label, trace) in [("QS1 once-through", &qs1), ("Zipfian repeated (s=1)", &zipf)] {
        println!("{label}:");
        println!("{:>10} {:>8} {:>8} {:>8}", "Policy", "Refs", "Hits", "Rate");
        for policy in ["lru", "clock", "s3fifo"] {
            let (refs, hits) = replay(policy, trace);
            println!(
                "{:>10} {:>8} {:>8} {:>8.3}",
                policy,
                refs,
                hits,
                hits as f64 / refs.max(1) as f64
            );
        }
    }
    println!();
}

fn main() {
    let start = std::time::Instant::now();
    ablation_segment_size();
    ablation_split_large_buffer();
    ablation_reservation();
    ablation_small_pool();
    ablation_recovery();
    ablation_compression();
    ablation_buffer_policy();
    eprintln!("# ablations finished in {:?}", start.elapsed());
}

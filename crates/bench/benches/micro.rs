//! Criterion microbenchmarks of the system's hot components: compression,
//! the hash dictionary, record decoding, the segment buffer, and single
//! record lookups through each storage backend.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use poir_btree::BTreeConfig;
use poir_core::{BTreeInvertedFile, MnemeInvertedFile, MnemeOptions};
use poir_inquery::{codec, Dictionary, DocId, InvertedFileStore, InvertedRecord, Posting, TermId};
use poir_mneme::{Buffer, LruBuffer, SegmentAddr, SegmentImage};
use poir_storage::{CostModel, Device, DeviceConfig};

fn make_record(df: u32) -> InvertedRecord {
    InvertedRecord::from_postings(
        (0..df)
            .map(|d| Posting {
                doc: DocId(d * 3),
                tf: 1 + d % 4,
                positions: (0..(1 + d % 4)).map(|p| p * 7 + d % 50).collect(),
            })
            .collect(),
    )
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for df in [8u32, 512, 16_384] {
        let record = make_record(df);
        let encoded = record.encode();
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", df), &record, |b, r| {
            b.iter(|| black_box(r.encode()));
        });
        group.bench_with_input(BenchmarkId::new("decode", df), &encoded, |b, e| {
            b.iter(|| black_box(InvertedRecord::decode(e).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("vbyte");
    let values: Vec<u32> = (0..4096).map(|i| i * 37 % 100_000).collect();
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("encode_stream", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(8192);
            for &v in &values {
                codec::encode_vbyte(v, &mut out);
            }
            black_box(out)
        });
    });
    group.finish();
}

fn bench_dictionary(c: &mut Criterion) {
    let mut dict = Dictionary::new();
    for i in 0..100_000 {
        dict.intern(&format!("term-number-{i}"));
    }
    let mut group = c.benchmark_group("dictionary");
    group.bench_function("lookup_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(dict.lookup(&format!("term-number-{i}")))
        });
    });
    group.bench_function("lookup_miss", |b| {
        b.iter(|| black_box(dict.lookup("definitely-not-present")));
    });
    group.finish();
}

fn bench_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_buffer");
    group.bench_function("insert_evict_cycle", |b| {
        let mut buffer = LruBuffer::new(64 * 1024);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let addr = SegmentAddr { offset: (i % 32) * 8192, len: 8192 };
            if buffer.lookup(addr).is_none() {
                let evicted = buffer.insert(addr, SegmentImage::from_disk(vec![0u8; 8192]));
                black_box(evicted);
            }
        });
    });
    group.finish();
}

fn backend_fixtures() -> (Dictionary, Vec<(TermId, Vec<u8>)>) {
    let mut dict = Dictionary::new();
    let mut records = Vec::new();
    for i in 0..20_000u32 {
        let id = dict.intern(&format!("t{i}"));
        let df = match i % 100 {
            0 => 2000,
            1..=9 => 200,
            10..=49 => 10,
            _ => 1,
        };
        records.push((id, make_record(df).encode()));
    }
    (dict, records)
}

fn bench_backends(c: &mut Criterion) {
    let device = || {
        Device::new(DeviceConfig {
            block_size: 8192,
            os_cache_blocks: 512,
            cost_model: CostModel::free(),
        })
    };
    let (mut dict_b, records) = backend_fixtures();
    let dev_b = device();
    let mut btree = BTreeInvertedFile::build(
        dev_b.create_file(),
        BTreeConfig::default(),
        &records,
        &mut dict_b,
    )
    .unwrap();
    let mut dict_m = dict_b.clone();
    let dev_m = device();
    let mut mneme = MnemeInvertedFile::build(
        dev_m.create_file(),
        MnemeOptions::default(),
        &records,
        &mut dict_m,
    )
    .unwrap();
    mneme
        .attach_buffers(poir_core::paper_heuristic(
            records.iter().map(|(_, r)| r.len()).max().unwrap(),
            8192,
        ))
        .unwrap();

    let mut group = c.benchmark_group("record_lookup");
    group.bench_function("btree", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 4999) % 20_000;
            black_box(btree.fetch(dict_b.entry(TermId(i)).store_ref).unwrap())
        });
    });
    group.bench_function("mneme_cached", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 4999) % 20_000;
            black_box(mneme.fetch(dict_m.entry(TermId(i)).store_ref).unwrap())
        });
    });
    group.finish();

    // One fetch per reference vs a single coalescing batch over the same
    // references (206 spread across the whole file).
    let refs: Vec<u64> =
        (0..20_000u32).step_by(97).map(|i| dict_m.entry(TermId(i)).store_ref).collect();
    let mut group = c.benchmark_group("record_fetch");
    group.throughput(Throughput::Elements(refs.len() as u64));
    group.bench_function("serial_loop", |b| {
        b.iter(|| {
            for &r in &refs {
                black_box(mneme.fetch(r).unwrap());
            }
        });
    });
    group.bench_function("fetch_batch", |b| {
        b.iter(|| black_box(mneme.fetch_batch(&refs)));
    });
    group.finish();
}

fn bench_query_eval(c: &mut Criterion) {
    use poir_inquery::{BeliefParams, Evaluator, IndexBuilder, MemoryStore, StopWords};
    let stop = StopWords::default();
    let mut builder = IndexBuilder::new(stop.clone());
    for d in 0..2_000usize {
        let mut text = String::with_capacity(600);
        for t in 0..80 {
            text.push_str(&format!("w{} ", (d * 13 + t * 7) % 500));
        }
        builder.add_document(&format!("D{d}"), &text);
    }
    let idx = builder.finish();
    let mut store = MemoryStore::new();
    let mut dict = idx.dictionary.clone();
    for (term, bytes) in &idx.records {
        let r = store.add(bytes.clone());
        dict.entry_mut(*term).store_ref = r;
    }
    let docs = idx.documents.clone();

    let mut group = c.benchmark_group("query_eval");
    for (label, query) in [
        ("sum3", "w1 w2 w3"),
        ("sum10", "w1 w2 w3 w4 w5 w6 w7 w8 w9 w10"),
        ("and3", "#and(w1 w2 w3)"),
        ("structured", "#wsum(2 w1 1 #and(w2 #or(w3 w4)) 3 w5)"),
        ("phrase", "#phrase(w1 w8)"),
    ] {
        let parsed = poir_inquery::parse_query(query, &stop).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut ev =
                    Evaluator::new(&mut store, &dict, &docs, &stop, BeliefParams::default());
                black_box(ev.rank(&parsed, 100).unwrap())
            });
        });
    }
    // Term-at-a-time vs document-at-a-time on the same bag query.
    let bag: Vec<(f64, String)> = (0..10).map(|i| (1.0, format!("w{i}"))).collect();
    group.bench_function("daat10", |b| {
        b.iter(|| {
            black_box(
                poir_inquery::query::daat::rank_daat(
                    &mut store,
                    &dict,
                    &docs,
                    BeliefParams::default(),
                    &bag,
                    100,
                )
                .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codec, bench_dictionary, bench_buffer, bench_backends, bench_query_eval
}
criterion_main!(benches);

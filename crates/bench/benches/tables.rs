//! `cargo bench -p poir-bench --bench tables` — regenerates every table and
//! figure of the paper at a reduced scale (set `POIR_BENCH_SCALE` to change;
//! the `reproduce` binary runs the full DESIGN.md §4 sizes).

use poir_bench::{fig1_points, fig2_points, fig3_sweep, print, run_all, RunConfig};
use poir_inquery::StopWords;

fn main() {
    let scale: f64 =
        std::env::var("POIR_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.15);
    let cfg = RunConfig { scale, top_k: 100, ..RunConfig::default() };
    eprintln!("# tables bench at scale {scale} (POIR_BENCH_SCALE to override)");
    let start = std::time::Instant::now();
    let results = run_all(&cfg);
    println!("{}", print::table1(&results));
    println!("{}", print::table2(&results));
    println!("{}", print::table3(&results));
    println!("{}", print::table4(&results));
    println!("{}", print::table5(&results));
    println!("{}", print::table6(&results));
    println!("{}", print::effectiveness(&results));

    let legal = results.iter().find(|r| r.label == "Legal").expect("legal ran");
    println!("{}", print::fig1(&legal.label, &fig1_points(&legal.record_sizes)));

    let scaled = poir_collections::legal().scale(cfg.scale);
    let collection = poir_collections::SyntheticCollection::new(scaled.spec.clone());
    let (index, _) = poir_bench::build_index(&collection);
    let qs2 = &legal.query_sets[1];
    println!(
        "{}",
        print::fig2(&qs2.label, &fig2_points(&index, &qs2.queries, &StopWords::default()))
    );

    let sweep = fig3_sweep(&poir_collections::tipster(), &cfg, 8);
    println!("{}", print::fig3("TIPSTER Query Set 1", &sweep));
    eprintln!("# tables bench finished in {:?}", start.elapsed());
}

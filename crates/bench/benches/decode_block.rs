//! Block-decode microbenchmarks: the v1 all-vbyte posting layout against
//! the v2 bit-packed layout, at the codec level (one batch of values) and
//! through `BlockCursor` streaming (whole records, both layouts decoded by
//! the same cursor). Run with one iteration in CI as a smoke check:
//!
//! ```text
//! cargo bench -p poir-bench --bench decode_block -- --test
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use poir_inquery::{codec, BlockCursor, DocId, InvertedRecord, Posting, BLOCK_SIZE};

fn make_record(df: u32) -> InvertedRecord {
    InvertedRecord::from_postings(
        (0..df)
            .map(|d| Posting {
                doc: DocId(d * 3),
                tf: 1 + d % 4,
                positions: (0..(1 + d % 4)).map(|p| p * 7 + d % 50).collect(),
            })
            .collect(),
    )
}

/// The pre-v2 blocked writer (mirrors the pinned fallback in the postings
/// tests): vbyte header, 3-field directory, interleaved vbyte postings.
fn encode_v1_blocked(r: &InvertedRecord) -> Vec<u8> {
    let mut out = Vec::new();
    codec::encode_vbyte(r.df(), &mut out);
    codec::encode_vbyte(r.cf.min(u32::MAX as u64) as u32, &mut out);
    codec::encode_vbyte(r.max_tf, &mut out);
    let mut body = Vec::new();
    let mut directory = Vec::new();
    let mut prev_doc = 0u32;
    let mut first = true;
    for chunk in r.postings.chunks(BLOCK_SIZE as usize) {
        let start = body.len();
        let mut block_max_tf = 0u32;
        for p in chunk {
            let gap = if first { p.doc.0 } else { p.doc.0 - prev_doc };
            first = false;
            prev_doc = p.doc.0;
            codec::encode_vbyte(gap, &mut body);
            codec::encode_vbyte(p.tf, &mut body);
            let mut prev_pos = 0u32;
            for (j, &pos) in p.positions.iter().enumerate() {
                codec::encode_vbyte(if j == 0 { pos } else { pos - prev_pos }, &mut body);
                prev_pos = pos;
            }
            block_max_tf = block_max_tf.max(p.tf);
        }
        directory.push((chunk[chunk.len() - 1].doc.0, body.len() - start, block_max_tf));
    }
    let mut prev_last = 0u32;
    for (i, &(last_doc, len, block_max_tf)) in directory.iter().enumerate() {
        codec::encode_vbyte(if i == 0 { last_doc } else { last_doc - prev_last }, &mut out);
        prev_last = last_doc;
        codec::encode_vbyte(len as u32, &mut out);
        codec::encode_vbyte(block_max_tf, &mut out);
    }
    out.extend_from_slice(&body);
    out
}

/// One batch of doc-gap-sized values decoded by both codecs. 64 and 128
/// postings are the block sizes that matter; 1024 shows the asymptote.
fn bench_batch_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_batch");
    for count in [64usize, BLOCK_SIZE as usize, 1024] {
        let values: Vec<u32> = (0..count as u32).map(|i| 3 + i * 37 % 4096).collect();

        let mut vbyte = Vec::new();
        for &v in &values {
            codec::encode_vbyte(v, &mut vbyte);
        }
        let width = values.iter().copied().map(codec::bit_width).max().unwrap();
        let mut packed = Vec::new();
        codec::pack_bits(&values, width, &mut packed);

        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(BenchmarkId::new("vbyte", count), &vbyte, |b, bytes| {
            let mut out = Vec::with_capacity(count);
            b.iter(|| {
                out.clear();
                let mut pos = 0usize;
                for _ in 0..count {
                    out.push(codec::decode_vbyte(bytes, &mut pos).unwrap());
                }
                black_box(out.last().copied())
            });
        });
        group.bench_with_input(BenchmarkId::new("bitpacked", count), &packed, |b, bytes| {
            let mut out = Vec::with_capacity(count);
            b.iter(|| {
                codec::unpack_bits(bytes, count, width, &mut out).unwrap();
                black_box(out.last().copied())
            });
        });
    }
    group.finish();
}

/// Whole-record doc/tf streaming through `BlockCursor`, which decodes both
/// layouts: the relative numbers are the codec difference alone.
fn bench_cursor_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_block");
    for df in [512u32, 4096, 32_768] {
        let record = make_record(df);
        let v1 = encode_v1_blocked(&record);
        let v2 = record.encode();
        assert!(v2.len() < v1.len(), "packed blocks must also be smaller");

        group.throughput(Throughput::Elements(df as u64));
        for (label, bytes) in [("vbyte", &v1), ("bitpacked", &v2)] {
            group.bench_with_input(BenchmarkId::new(label, df), bytes, |b, bytes| {
                b.iter(|| {
                    let (mut cur, ..) = BlockCursor::open(bytes).unwrap();
                    let mut checksum = 0u64;
                    while let Some((d, tf)) = cur.next_doc_tf(bytes) {
                        checksum += (d.0 + tf) as u64;
                    }
                    black_box(checksum)
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_batch_decode, bench_cursor_stream
}
criterion_main!(benches);

//! Simulated storage substrate for the EDBT'94 INQUERY + Mneme reproduction.
//!
//! The paper's evaluation platform was a DECstation 5000/240 running ULTRIX
//! with a 1.35 GB RZ58 SCSI disk. Its key measurements (Table 5) are:
//!
//! * **I** — the number of 8 Kbyte blocks actually read from disk
//!   (`getrusage` I/O inputs, i.e. ULTRIX file-buffer-cache misses),
//! * **A** — file accesses (read system calls) per inverted-list lookup,
//! * **B** — total Kbytes requested from the file by the application.
//!
//! This crate provides a deterministic stand-in for that platform: a
//! [`Device`] that stores file contents (in memory or in real temporary
//! files), transfers data in fixed-size blocks through a simulated operating
//! system page cache ([`OsCache`]), counts every event in [`IoStats`], and
//! converts event counts into simulated "system CPU + I/O" time with a
//! configurable [`CostModel`].
//!
//! Both index backends (the custom B-tree package in `poir-btree` and the
//! Mneme object store in `poir-mneme`) perform *all* persistent I/O through
//! [`FileHandle`]s obtained from a shared [`Device`], so the three-way
//! comparison in the paper's Tables 3-5 is reproducible bit-for-bit.
//!
//! The paper purged the ULTRIX file cache between runs by reading a 32 Mbyte
//! "chill file"; [`Device::chill`] performs the equivalent purge.

mod backend;
mod cache;
mod cost;
mod device;
mod error;
mod fault;
mod stats;

pub use backend::{ByteStore, FileBackend, InMemoryBackend};
pub use cache::OsCache;
pub use cost::{CostModel, SimTime};
pub use device::{Device, DeviceConfig, FileHandle, FileId};
pub use error::{Result, StorageError};
pub use fault::{FaultKind, FaultOp, FaultPlan, FaultRule, FaultSchedule, FaultStats};
pub use stats::{IoSnapshot, IoStats};

/// The disk transfer block size used throughout the paper's evaluation.
///
/// "Each disk access causes 8 Kbytes to be read from disk" (Section 4.3).
pub const DEFAULT_BLOCK_SIZE: usize = 8192;

//! I/O event counters matching the paper's Table 5 measurements.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing I/O event counters.
///
/// One instance is shared by all [`crate::FileHandle`]s of a
/// [`crate::Device`]. Counters are atomics so handles can be used from
/// multiple threads; all reads use relaxed ordering because the counters are
/// statistics, not synchronisation.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Number of blocks actually transferred from the simulated disk
    /// (operating-system cache misses). Table 5 column "I".
    io_inputs: AtomicU64,
    /// Number of blocks written to the simulated disk.
    io_outputs: AtomicU64,
    /// Number of read system calls issued by the application.
    /// Numerator of Table 5 column "A".
    file_accesses: AtomicU64,
    /// Number of write system calls issued by the application.
    file_writes: AtomicU64,
    /// Total bytes requested by read system calls. Table 5 column "B"
    /// (reported there in Kbytes).
    bytes_read: AtomicU64,
    /// Total bytes passed to write system calls.
    bytes_written: AtomicU64,
}

impl IoStats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_read(&self, bytes: u64) {
        self.file_accesses.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: u64) {
        self.file_writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_io_inputs(&self, blocks: u64) {
        self.io_inputs.fetch_add(blocks, Ordering::Relaxed);
    }

    pub(crate) fn record_io_outputs(&self, blocks: u64) {
        self.io_outputs.fetch_add(blocks, Ordering::Relaxed);
    }

    /// Blocks read from the simulated disk so far.
    pub fn io_inputs(&self) -> u64 {
        self.io_inputs.load(Ordering::Relaxed)
    }

    /// Blocks written to the simulated disk so far.
    pub fn io_outputs(&self) -> u64 {
        self.io_outputs.load(Ordering::Relaxed)
    }

    /// Read system calls issued so far.
    pub fn file_accesses(&self) -> u64 {
        self.file_accesses.load(Ordering::Relaxed)
    }

    /// Write system calls issued so far.
    pub fn file_writes(&self) -> u64 {
        self.file_writes.load(Ordering::Relaxed)
    }

    /// Bytes requested by reads so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Bytes passed to writes so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Captures the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            io_inputs: self.io_inputs(),
            io_outputs: self.io_outputs(),
            file_accesses: self.file_accesses(),
            file_writes: self.file_writes(),
            bytes_read: self.bytes_read(),
            bytes_written: self.bytes_written(),
        }
    }
}

/// A point-in-time copy of [`IoStats`], supporting interval deltas.
///
/// The reproduction harness snapshots before and after each query set and
/// reports the difference, exactly as the paper measures per-run statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    pub io_inputs: u64,
    pub io_outputs: u64,
    pub file_accesses: u64,
    pub file_writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

impl IoSnapshot {
    /// Counter increments between `earlier` and `self`.
    ///
    /// Saturates at zero componentwise, so a stats reset (or a snapshot pair
    /// taken out of order around one) yields zeros instead of underflowing.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            io_inputs: self.io_inputs.saturating_sub(earlier.io_inputs),
            io_outputs: self.io_outputs.saturating_sub(earlier.io_outputs),
            file_accesses: self.file_accesses.saturating_sub(earlier.file_accesses),
            file_writes: self.file_writes.saturating_sub(earlier.file_writes),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
        }
    }

    /// Bytes read expressed in whole Kbytes, as Table 5 reports column "B".
    pub fn kbytes_read(&self) -> u64 {
        self.bytes_read / 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(100);
        s.record_read(24);
        s.record_io_inputs(3);
        s.record_write(10);
        s.record_io_outputs(1);
        assert_eq!(s.file_accesses(), 2);
        assert_eq!(s.bytes_read(), 124);
        assert_eq!(s.io_inputs(), 3);
        assert_eq!(s.file_writes(), 1);
        assert_eq!(s.bytes_written(), 10);
        assert_eq!(s.io_outputs(), 1);
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.record_read(2048);
        let before = s.snapshot();
        s.record_read(4096);
        s.record_io_inputs(2);
        let after = s.snapshot();
        let d = after.since(&before);
        assert_eq!(d.file_accesses, 1);
        assert_eq!(d.bytes_read, 4096);
        assert_eq!(d.io_inputs, 2);
        assert_eq!(d.kbytes_read(), 4);
    }

    #[test]
    fn snapshot_of_fresh_stats_is_zero() {
        assert_eq!(IoStats::new().snapshot(), IoSnapshot::default());
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let s = IoStats::new();
        s.record_read(4096);
        s.record_io_inputs(2);
        let high = s.snapshot();
        // A snapshot taken "before" a reset has higher counts than one taken
        // after; the delta must clamp to zero rather than panic.
        let d = IoSnapshot::default().since(&high);
        assert_eq!(d, IoSnapshot::default());
    }
}

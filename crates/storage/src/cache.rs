//! Simulated operating-system file-buffer cache.
//!
//! ULTRIX cached file blocks in kernel memory; the paper notes that "some
//! file accesses are satisfied by the Ultrix file system cache" and purges
//! this cache between runs with a 32 Mbyte chill file. [`OsCache`] models
//! that cache as an LRU set of `(file, block)` pages with a fixed capacity
//! in blocks.
//!
//! The cache stores only page *identities*, not contents — actual bytes live
//! in the file backend. Whether a block is present determines whether a read
//! counts as a disk transfer (an "I/O input") and is charged disk time.

use std::collections::HashMap;

/// Identity of one cached page.
pub(crate) type PageKey = (u32, u64); // (file id, block number)

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: PageKey,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU set of file blocks.
#[derive(Debug)]
pub struct OsCache {
    capacity: usize,
    map: HashMap<PageKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
}

impl OsCache {
    /// Creates a cache holding at most `capacity` blocks. A capacity of zero
    /// disables caching entirely (every access misses).
    pub fn new(capacity: usize) -> Self {
        OsCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up a page, promoting it to most-recently-used on a hit.
    /// Returns whether the page was present, and records a hit or miss.
    pub fn access(&mut self, key: PageKey) -> bool {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.hits += 1;
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Inserts a page as most-recently-used, evicting the least-recently-used
    /// page if the cache is full. Inserting an already-present page just
    /// promotes it. Returns the evicted page, if any.
    pub fn insert(&mut self, key: PageKey) -> Option<PageKey> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(idx) = self.map.get(&key).copied() {
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let vkey = self.nodes[victim].key;
            self.unlink(victim);
            self.map.remove(&vkey);
            self.free.push(victim);
            evicted = Some(vkey);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i].key = key;
                i
            }
            None => {
                self.nodes.push(Node { key, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Removes a page if present (used when a file is truncated or deleted).
    pub fn invalidate(&mut self, key: PageKey) {
        if let Some(idx) = self.map.remove(&key) {
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    /// Drops every cached page — the paper's "chill file" purge. Hit/miss
    /// statistics are preserved.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = OsCache::new(2);
        assert!(!c.access((1, 0)));
        c.insert((1, 0));
        assert!(c.access((1, 0)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = OsCache::new(2);
        c.insert((1, 0));
        c.insert((1, 1));
        assert!(c.access((1, 0))); // 0 now MRU, 1 is LRU
        assert_eq!(c.insert((1, 2)), Some((1, 1)));
        assert!(c.access((1, 0)));
        assert!(!c.access((1, 1)));
        assert!(c.access((1, 2)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_promotes_without_eviction() {
        let mut c = OsCache::new(2);
        c.insert((1, 0));
        c.insert((1, 1));
        assert_eq!(c.insert((1, 0)), None); // promote, nothing evicted
        assert_eq!(c.insert((1, 2)), Some((1, 1))); // 1 was LRU
    }

    #[test]
    fn zero_capacity_never_caches() {
        let mut c = OsCache::new(0);
        assert_eq!(c.insert((1, 0)), None);
        assert!(!c.access((1, 0)));
        assert!(c.is_empty());
    }

    #[test]
    fn clear_purges_pages_like_a_chill_file() {
        let mut c = OsCache::new(8);
        for b in 0..8 {
            c.insert((1, b));
        }
        assert_eq!(c.len(), 8);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.access((1, 3)));
        // Cache still usable after the purge.
        c.insert((2, 0));
        assert!(c.access((2, 0)));
    }

    #[test]
    fn invalidate_removes_single_page() {
        let mut c = OsCache::new(4);
        c.insert((1, 0));
        c.insert((1, 1));
        c.invalidate((1, 0));
        assert!(!c.access((1, 0)));
        assert!(c.access((1, 1)));
        c.invalidate((9, 9)); // absent key is a no-op
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn slots_are_reused_after_eviction() {
        let mut c = OsCache::new(2);
        for b in 0..100 {
            c.insert((1, b));
        }
        // Only ever 2 resident; the node arena must not grow unboundedly.
        assert_eq!(c.len(), 2);
        assert!(c.nodes.len() <= 3);
    }
}

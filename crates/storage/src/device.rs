//! The simulated I/O device: files + OS cache + accounting.
//!
//! A [`Device`] plays the role of the paper's evaluation platform. Every
//! read issued by an index backend is treated as one system call against the
//! simulated kernel: the request is counted, its bytes are counted, and each
//! 8 Kbyte block it touches either hits the simulated ULTRIX buffer cache or
//! is transferred from "disk" (incrementing the I/O-input counter that
//! `getrusage` reported on the real platform).
//!
//! Handles are cheap to clone and thread-safe; a single device is shared by
//! the dictionary, the B-tree file, and the Mneme files of one experiment so
//! the counters aggregate exactly like a process-wide `getrusage` call.

use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use poir_telemetry::{Event, Recorder, TraceOp};

use crate::backend::{ByteStore, FileBackend, InMemoryBackend};
use crate::cache::OsCache;
use crate::cost::CostModel;
use crate::error::{Result, StorageError};
use crate::fault::{
    FaultKind, FaultOp, FaultPlan, FaultRule, FaultSchedule, FaultState, FaultStats,
};
use crate::stats::IoStats;
use crate::DEFAULT_BLOCK_SIZE;

/// Identifier of a file living on a [`Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Construction-time parameters of a [`Device`].
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Disk transfer block size in bytes. The paper's platform moves 8 Kbyte
    /// blocks; changing this is only useful for ablation studies.
    pub block_size: usize,
    /// Capacity of the simulated operating-system buffer cache, in blocks.
    /// The default models a few Mbytes of ULTRIX buffer cache.
    pub os_cache_blocks: usize,
    /// Per-event costs used to convert counters into simulated time.
    pub cost_model: CostModel,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            block_size: DEFAULT_BLOCK_SIZE,
            // 512 blocks * 8 KB = 4 MB of kernel buffer cache.
            os_cache_blocks: 512,
            cost_model: CostModel::default(),
        }
    }
}

struct DeviceInner {
    files: Vec<Option<Box<dyn ByteStore>>>,
    cache: OsCache,
    /// Deterministic fault injection. `None` (the common case) costs one
    /// branch per operation; an installed [`FaultPlan`] is consulted on
    /// every read/write/sync before any accounting happens.
    faults: Option<Box<FaultState>>,
    /// Fault counters accumulated by plans that have since been cleared,
    /// so [`Device::fault_stats`] stays monotonic across installs.
    retired_fault_stats: FaultStats,
    /// Telemetry recorder, mirroring every [`IoStats`] update (plus
    /// OS-cache hit/miss events) so reports derived from telemetry match
    /// `IoSnapshot` deltas exactly. Disabled (no-op) by default.
    recorder: Recorder,
}

impl DeviceInner {
    /// Emits the fault-injection telemetry for one fired fault.
    fn note_fault(&mut self, file: FileId, bytes: u64) {
        self.recorder.incr(Event::FaultInjected);
        self.recorder.trace(
            TraceOp::FaultInjected,
            file.0 as u64,
            None,
            bytes,
            std::time::Duration::ZERO,
        );
    }
}

/// Bytes of a read that survive a short-read fault: the prefix up to the
/// first block boundary, and always strictly less than the request.
fn short_read_len(offset: u64, len: usize, block: u64) -> usize {
    if len == 0 {
        return 0;
    }
    let first_boundary = (offset / block + 1) * block;
    let delivered = (first_boundary - offset) as usize;
    if delivered >= len {
        0
    } else {
        delivered
    }
}

/// Bytes of a write that survive a torn-write fault: the largest
/// block-aligned proper prefix (possibly empty).
fn torn_write_len(offset: u64, len: usize, block: u64) -> usize {
    if len == 0 {
        return 0;
    }
    let end = offset + len as u64;
    let last_boundary = (end - 1) / block * block;
    if last_boundary <= offset {
        0
    } else {
        (last_boundary - offset) as usize
    }
}

/// Reads a store's full content, for durable-image tracking.
fn snapshot_store(store: &mut dyn ByteStore) -> Vec<u8> {
    let len = store.len() as usize;
    let mut buf = vec![0u8; len];
    if len > 0 {
        let _ = store.read_at(0, &mut buf);
    }
    buf
}

/// Fires a power cut: rolls every file of the device back to its last
/// durable (synced) image, drops the stale OS cache, and poisons the
/// device until the fault plan is cleared. `current` is the file whose
/// store is temporarily checked out of the file table.
fn fire_power_cut(
    inner: &mut DeviceInner,
    current: FileId,
    store: &mut dyn ByteStore,
) -> StorageError {
    let images = {
        let fs = inner.faults.as_mut().expect("power cut fired without an installed plan");
        fs.poisoned = true;
        std::mem::take(&mut fs.durable)
    };
    for idx in 0..inner.files.len() {
        let image: &[u8] = images.get(idx).map(Vec::as_slice).unwrap_or(&[]);
        let target: &mut dyn ByteStore = if idx == current.0 as usize {
            &mut *store
        } else {
            match inner.files[idx].as_mut() {
                Some(s) => s.as_mut(),
                None => continue,
            }
        };
        // Restoration must not fail the simulation; a real power cut does
        // not report errors either.
        let _ = target.truncate(0);
        if !image.is_empty() {
            let _ = target.write_at(0, image);
        }
    }
    if let Some(fs) = inner.faults.as_mut() {
        fs.durable = images;
    }
    inner.cache.clear();
    StorageError::Poisoned
}

/// A simulated disk plus operating-system cache.
///
/// ```
/// use poir_storage::Device;
/// let device = Device::with_defaults();
/// let file = device.create_file();
/// file.write(0, b"hello").unwrap();
/// device.chill(); // purge the simulated OS cache (the paper's chill file)
/// assert_eq!(file.read(0, 5).unwrap(), b"hello");
/// assert_eq!(device.stats().io_inputs(), 1, "one 8 KB block came from disk");
/// ```
pub struct Device {
    inner: Mutex<DeviceInner>,
    stats: Arc<IoStats>,
    config: DeviceConfig,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("block_size", &self.config.block_size)
            .field("os_cache_blocks", &self.config.os_cache_blocks)
            .finish_non_exhaustive()
    }
}

impl Device {
    /// Creates a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Arc<Self> {
        assert!(config.block_size > 0, "block size must be positive");
        Arc::new(Device {
            inner: Mutex::new(DeviceInner {
                files: Vec::new(),
                cache: OsCache::new(config.os_cache_blocks),
                faults: None,
                retired_fault_stats: FaultStats::default(),
                recorder: Recorder::disabled(),
            }),
            stats: Arc::new(IoStats::new()),
            config,
        })
    }

    /// Creates a device with the default (paper-platform) configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(DeviceConfig::default())
    }

    /// The shared I/O counters for this device.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The device's cost model.
    pub fn cost_model(&self) -> CostModel {
        self.config.cost_model
    }

    /// The device's transfer block size.
    pub fn block_size(&self) -> usize {
        self.config.block_size
    }

    /// OS-cache hit/miss counts `(hits, misses)` so far.
    pub fn os_cache_counters(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.cache.hits(), inner.cache.misses())
    }

    /// Attaches a telemetry recorder. Every subsequent `IoStats` update is
    /// mirrored into it at the same call site, alongside per-block OS-cache
    /// hit/miss events.
    pub fn attach_recorder(&self, recorder: Recorder) {
        self.inner.lock().recorder = recorder;
    }

    /// A clone of the currently attached telemetry recorder (disabled
    /// unless one was attached).
    pub fn recorder(&self) -> Recorder {
        self.inner.lock().recorder.clone()
    }

    /// Creates a new, empty in-memory file.
    pub fn create_file(self: &Arc<Self>) -> FileHandle {
        self.register(Box::new(InMemoryBackend::new()))
    }

    /// Creates (or opens) a file backed by the real file at `path`.
    pub fn create_file_at(self: &Arc<Self>, path: &Path) -> Result<FileHandle> {
        Ok(self.register(Box::new(FileBackend::open(path)?)))
    }

    fn register(self: &Arc<Self>, mut store: Box<dyn ByteStore>) -> FileHandle {
        let mut inner = self.inner.lock();
        let id = FileId(inner.files.len() as u32);
        // A file registered while a power-cut rule is armed contributes its
        // current content as the durable image: data that existed before
        // the simulated machine came up survives the cut.
        let image = match inner.faults.as_ref() {
            Some(fs) if fs.track_durable => Some(snapshot_store(store.as_mut())),
            _ => None,
        };
        if let (Some(image), Some(fs)) = (image, inner.faults.as_mut()) {
            fs.durable.push(image);
        }
        inner.files.push(Some(store));
        FileHandle { device: Arc::clone(self), id }
    }

    /// Purges the simulated OS buffer cache — equivalent to the paper's
    /// 32 Mbyte "chill file" read between runs.
    pub fn chill(&self) {
        self.inner.lock().cache.clear();
    }

    /// Installs a deterministic fault-injection plan, replacing any
    /// previous one. When the plan contains a [`FaultKind::PowerCut`]
    /// rule, the current content of every file is captured as its durable
    /// image (refreshed on each successful `sync`), so a fired cut can
    /// roll the device back to exactly what a real disk would have kept.
    ///
    /// Fault counters accumulate across installs; see
    /// [`Device::fault_stats`].
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        let mut inner = self.inner.lock();
        let prior = inner.faults.take().map(|f| f.stats()).unwrap_or(inner.retired_fault_stats);
        let mut state = FaultState::new(plan, prior);
        if state.track_durable {
            let mut images = Vec::with_capacity(inner.files.len());
            for slot in inner.files.iter_mut() {
                images.push(match slot {
                    Some(store) => snapshot_store(store.as_mut()),
                    None => Vec::new(),
                });
            }
            state.durable = images;
        }
        inner.retired_fault_stats = prior;
        inner.faults = Some(Box::new(state));
    }

    /// Removes the installed fault plan (if any) and un-poisons the
    /// device. Counters already accumulated stay visible through
    /// [`Device::fault_stats`].
    pub fn clear_fault_plan(&self) {
        let mut inner = self.inner.lock();
        if let Some(state) = inner.faults.take() {
            inner.retired_fault_stats = state.stats();
        }
    }

    /// Lifetime fault-injection counters (across every plan ever
    /// installed on this device).
    pub fn fault_stats(&self) -> FaultStats {
        let inner = self.inner.lock();
        inner.faults.as_ref().map(|f| f.stats()).unwrap_or(inner.retired_fault_stats)
    }

    /// Whether an injected power cut has poisoned the device.
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().faults.as_ref().is_some_and(|f| f.poisoned)
    }

    /// After `reads` further read system calls, every read fails with
    /// [`StorageError::InjectedFault`]. Pass `None` to disarm.
    ///
    /// Deprecated: thin shim over [`Device::install_fault_plan`] kept for
    /// older tests; new code should install a [`FaultPlan`] (which can
    /// also scope the fault to one file, schedule it from a seed, or pick
    /// a different fault kind). Calling this replaces any installed plan.
    pub fn inject_read_fault_after(&self, reads: Option<u64>) {
        match reads {
            Some(n) => self.install_fault_plan(FaultPlan::new().rule(FaultRule::new(
                FaultOp::Read,
                FaultKind::Eio,
                FaultSchedule::AfterOps { skip: n },
            ))),
            None => self.clear_fault_plan(),
        }
    }

    fn with_file<R>(
        &self,
        id: FileId,
        f: impl FnOnce(&mut DeviceInner, &mut Box<dyn ByteStore>) -> Result<R>,
    ) -> Result<R> {
        let mut inner = self.inner.lock();
        // Temporarily take the store out so we can pass &mut DeviceInner too.
        let mut store = inner
            .files
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .ok_or(StorageError::UnknownFile(id.0))?;
        let result = f(&mut inner, &mut store);
        inner.files[id.0 as usize] = Some(store);
        result
    }

    fn read_at(&self, id: FileId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let block = self.config.block_size as u64;
        let mut panic_pending = false;
        let result = self.with_file(id, |inner, store| {
            // Fault gate first, before any accounting: a faulted operation
            // is not a completed system call.
            if inner.faults.is_some() {
                let decision = {
                    let fs = inner.faults.as_mut().expect("checked is_some");
                    if fs.poisoned {
                        return Err(StorageError::Poisoned);
                    }
                    fs.decide(id, FaultOp::Read)
                };
                if let Some(kind) = decision {
                    inner.note_fault(id, buf.len() as u64);
                    return Err(match kind {
                        FaultKind::Eio | FaultKind::TornWrite => StorageError::InjectedFault,
                        FaultKind::ShortRead => {
                            let delivered = short_read_len(offset, buf.len(), block);
                            if delivered > 0 {
                                store.read_at(offset, &mut buf[..delivered])?;
                            }
                            StorageError::ShortRead {
                                requested: buf.len() as u64,
                                delivered: delivered as u64,
                            }
                        }
                        FaultKind::PowerCut => fire_power_cut(inner, id, store.as_mut()),
                        FaultKind::Panic => {
                            panic_pending = true;
                            StorageError::InjectedFault
                        }
                    });
                }
            }
            let traced = inner.recorder.trace_start();
            self.stats.record_read(buf.len() as u64);
            inner.recorder.incr(Event::FileAccess);
            inner.recorder.add(Event::BytesRead, buf.len() as u64);
            if !buf.is_empty() {
                let first = offset / block;
                let last = (offset + buf.len() as u64 - 1) / block;
                let mut disk_blocks = 0;
                for b in first..=last {
                    if !inner.cache.access((id.0, b)) {
                        disk_blocks += 1;
                        inner.cache.insert((id.0, b));
                    }
                }
                if disk_blocks > 0 {
                    self.stats.record_io_inputs(disk_blocks);
                }
                inner.recorder.add(Event::OsCacheHit, (last - first + 1) - disk_blocks);
                inner.recorder.add(Event::OsCacheMiss, disk_blocks);
                inner.recorder.add(Event::IoInput, disk_blocks);
            }
            let result = store.read_at(offset, buf);
            inner.recorder.trace_end(traced, TraceOp::DeviceRead, offset, None, buf.len() as u64);
            result
        });
        if panic_pending {
            panic!("injected panic fault (poir-storage failpoint)");
        }
        result
    }

    fn read_at_vectored(&self, id: FileId, ranges: &[(u64, u32)]) -> Result<Vec<Vec<u8>>> {
        let block = self.config.block_size as u64;
        let mut panic_pending = false;
        let result = self.with_file(id, |inner, store| {
            if inner.faults.is_some() {
                let decision = {
                    let fs = inner.faults.as_mut().expect("checked is_some");
                    if fs.poisoned {
                        return Err(StorageError::Poisoned);
                    }
                    fs.decide(id, FaultOp::Read)
                };
                if let Some(kind) = decision {
                    let total: u64 = ranges.iter().map(|&(_, len)| len as u64).sum();
                    inner.note_fault(id, total);
                    return Err(match kind {
                        FaultKind::Eio | FaultKind::TornWrite => StorageError::InjectedFault,
                        // A gathered read delivers all ranges or none; a
                        // short read on it delivers none.
                        FaultKind::ShortRead => {
                            StorageError::ShortRead { requested: total, delivered: 0 }
                        }
                        FaultKind::PowerCut => fire_power_cut(inner, id, store.as_mut()),
                        FaultKind::Panic => {
                            panic_pending = true;
                            StorageError::InjectedFault
                        }
                    });
                }
            }
            // One gathered system call, like preadv: a single file access
            // whose byte count is the sum of all requested ranges.
            let traced = inner.recorder.trace_start();
            let total: u64 = ranges.iter().map(|&(_, len)| len as u64).sum();
            self.stats.record_read(total);
            inner.recorder.incr(Event::FileAccess);
            inner.recorder.add(Event::BytesRead, total);
            let mut disk_blocks = 0;
            let mut touched = 0;
            for &(offset, len) in ranges {
                if len == 0 {
                    continue;
                }
                let first = offset / block;
                let last = (offset + len as u64 - 1) / block;
                touched += last - first + 1;
                for b in first..=last {
                    if !inner.cache.access((id.0, b)) {
                        disk_blocks += 1;
                        inner.cache.insert((id.0, b));
                    }
                }
            }
            if disk_blocks > 0 {
                self.stats.record_io_inputs(disk_blocks);
            }
            inner.recorder.add(Event::OsCacheHit, touched - disk_blocks);
            inner.recorder.add(Event::OsCacheMiss, disk_blocks);
            inner.recorder.add(Event::IoInput, disk_blocks);
            let mut out = Vec::with_capacity(ranges.len());
            for &(offset, len) in ranges {
                let mut buf = vec![0u8; len as usize];
                store.read_at(offset, &mut buf)?;
                out.push(buf);
            }
            let start = ranges.first().map_or(0, |&(offset, _)| offset);
            inner.recorder.trace_end(traced, TraceOp::DeviceRead, start, None, total);
            Ok(out)
        });
        if panic_pending {
            panic!("injected panic fault (poir-storage failpoint)");
        }
        result
    }

    fn write_at(&self, id: FileId, offset: u64, data: &[u8]) -> Result<()> {
        let block = self.config.block_size as u64;
        let mut panic_pending = false;
        let result = self.with_file(id, |inner, store| {
            if inner.faults.is_some() {
                let decision = {
                    let fs = inner.faults.as_mut().expect("checked is_some");
                    if fs.poisoned {
                        return Err(StorageError::Poisoned);
                    }
                    fs.decide(id, FaultOp::Write)
                };
                if let Some(kind) = decision {
                    inner.note_fault(id, data.len() as u64);
                    return Err(match kind {
                        FaultKind::Eio | FaultKind::ShortRead => StorageError::InjectedFault,
                        FaultKind::TornWrite => {
                            let written = torn_write_len(offset, data.len(), block);
                            if written > 0 {
                                store.write_at(offset, &data[..written])?;
                            }
                            StorageError::TornWrite {
                                requested: data.len() as u64,
                                written: written as u64,
                            }
                        }
                        FaultKind::PowerCut => fire_power_cut(inner, id, store.as_mut()),
                        FaultKind::Panic => {
                            panic_pending = true;
                            StorageError::InjectedFault
                        }
                    });
                }
            }
            let traced = inner.recorder.trace_start();
            self.stats.record_write(data.len() as u64);
            inner.recorder.incr(Event::FileWrite);
            inner.recorder.add(Event::BytesWritten, data.len() as u64);
            if !data.is_empty() {
                let first = offset / block;
                let last = (offset + data.len() as u64 - 1) / block;
                self.stats.record_io_outputs(last - first + 1);
                inner.recorder.add(Event::IoOutput, last - first + 1);
                // A UNIX buffer cache keeps written blocks resident.
                for b in first..=last {
                    inner.cache.insert((id.0, b));
                }
            }
            let result = store.write_at(offset, data);
            inner.recorder.trace_end(traced, TraceOp::DeviceWrite, offset, None, data.len() as u64);
            result
        });
        if panic_pending {
            panic!("injected panic fault (poir-storage failpoint)");
        }
        result
    }

    fn len(&self, id: FileId) -> Result<u64> {
        self.with_file(id, |_, store| Ok(store.len()))
    }

    fn truncate(&self, id: FileId, len: u64) -> Result<()> {
        let block = self.config.block_size as u64;
        self.with_file(id, |inner, store| {
            if inner.faults.as_ref().is_some_and(|f| f.poisoned) {
                return Err(StorageError::Poisoned);
            }
            let old_len = store.len();
            store.truncate(len)?;
            if len < old_len {
                let first_dead = len / block;
                let last_dead = old_len.saturating_sub(1) / block;
                for b in first_dead..=last_dead {
                    inner.cache.invalidate((id.0, b));
                }
            }
            Ok(())
        })
    }

    fn sync(&self, id: FileId) -> Result<()> {
        let mut panic_pending = false;
        let result = self.with_file(id, |inner, store| {
            if inner.faults.is_some() {
                let decision = {
                    let fs = inner.faults.as_mut().expect("checked is_some");
                    if fs.poisoned {
                        return Err(StorageError::Poisoned);
                    }
                    fs.decide(id, FaultOp::Sync)
                };
                if let Some(kind) = decision {
                    inner.note_fault(id, 0);
                    return Err(match kind {
                        FaultKind::Eio | FaultKind::ShortRead | FaultKind::TornWrite => {
                            StorageError::InjectedFault
                        }
                        FaultKind::PowerCut => fire_power_cut(inner, id, store.as_mut()),
                        FaultKind::Panic => {
                            panic_pending = true;
                            StorageError::InjectedFault
                        }
                    });
                }
            }
            store.sync()?;
            // A completed sync is the durability barrier the power-cut
            // model rolls back to: refresh this file's durable image.
            if inner.faults.as_ref().is_some_and(|f| f.track_durable) {
                let image = snapshot_store(store.as_mut());
                let fs = inner.faults.as_mut().expect("checked is_some");
                let idx = id.0 as usize;
                if fs.durable.len() <= idx {
                    fs.durable.resize_with(idx + 1, Vec::new);
                }
                fs.durable[idx] = image;
            }
            Ok(())
        });
        if panic_pending {
            panic!("injected panic fault (poir-storage failpoint)");
        }
        result
    }
}

/// A handle to one file on a [`Device`]. Clones share the same file.
#[derive(Debug, Clone)]
pub struct FileHandle {
    device: Arc<Device>,
    id: FileId,
}

impl FileHandle {
    /// The id of this file on its device.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// The device this file lives on.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Current length of the file in bytes.
    pub fn len(&self) -> Result<u64> {
        self.device.len(self.id)
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Reads exactly `buf.len()` bytes starting at `offset`.
    ///
    /// Counts as one file access (system call) regardless of length.
    pub fn read_into(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.device.read_at(self.id, offset, buf)
    }

    /// Reads `len` bytes starting at `offset` into a fresh vector.
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read_into(offset, &mut buf)?;
        Ok(buf)
    }

    /// Reads several `(offset, len)` ranges in one gathered system call,
    /// like `preadv`: the whole request counts as **one** file access, and
    /// each distinct block touched counts at most one I/O input.
    ///
    /// Ranges may be disjoint; callers batching adjacent segments should
    /// prefer [`FileHandle::read_run`], which expresses the common
    /// contiguous case directly.
    pub fn read_vectored(&self, ranges: &[(u64, u32)]) -> Result<Vec<Vec<u8>>> {
        self.device.read_at_vectored(self.id, ranges)
    }

    /// Reads a contiguous run of `lens.len()` adjacent chunks starting at
    /// `start` in one system call, returning one buffer per chunk.
    ///
    /// This is the coalesced-batch primitive: a run of physically adjacent
    /// segments is transferred with a single file access instead of one
    /// access per segment.
    pub fn read_run(&self, start: u64, lens: &[u32]) -> Result<Vec<Vec<u8>>> {
        let mut ranges = Vec::with_capacity(lens.len());
        let mut offset = start;
        for &len in lens {
            ranges.push((offset, len));
            offset += len as u64;
        }
        self.device.read_at_vectored(self.id, &ranges)
    }

    /// Writes `data` at `offset`, extending the file if needed.
    ///
    /// Counts as one write system call.
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.device.write_at(self.id, offset, data)
    }

    /// Appends `data` at the end of the file, returning the offset it was
    /// written at.
    pub fn append(&self, data: &[u8]) -> Result<u64> {
        let offset = self.len()?;
        self.write(offset, data)?;
        Ok(offset)
    }

    /// Shrinks or extends the file to exactly `len` bytes.
    pub fn truncate(&self, len: u64) -> Result<()> {
        self.device.truncate(self.id, len)
    }

    /// Forces the file to durable storage.
    pub fn sync(&self) -> Result<()> {
        self.device.sync(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_device() -> Arc<Device> {
        Device::new(DeviceConfig {
            block_size: 16,
            os_cache_blocks: 4,
            cost_model: CostModel::free(),
        })
    }

    #[test]
    fn read_counts_one_syscall_and_blocks() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[7u8; 64]).unwrap();
        let before = dev.stats().snapshot();
        let data = f.read(0, 40).unwrap(); // spans blocks 0..=2
        assert_eq!(data, vec![7u8; 40]);
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.file_accesses, 1);
        assert_eq!(d.bytes_read, 40);
        // Blocks were cached by the write, so no disk inputs.
        assert_eq!(d.io_inputs, 0);
    }

    #[test]
    fn chill_forces_disk_transfers() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[1u8; 64]).unwrap();
        dev.chill();
        let before = dev.stats().snapshot();
        f.read(0, 40).unwrap();
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.io_inputs, 3, "blocks 0,1,2 must come from disk after chill");
        // A second read of the same range is now cache-resident.
        let before = dev.stats().snapshot();
        f.read(0, 40).unwrap();
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.io_inputs, 0);
    }

    #[test]
    fn cache_capacity_bounds_residency() {
        let dev = small_device(); // 4-block cache
        let f = dev.create_file();
        f.write(0, &[2u8; 160]).unwrap(); // 10 blocks
        dev.chill();
        f.read(0, 160).unwrap(); // brings in 10 blocks; only last 4 stay
        let before = dev.stats().snapshot();
        f.read(0, 16).unwrap(); // block 0 was evicted
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.io_inputs, 1);
        let before = dev.stats().snapshot();
        f.read(144, 16).unwrap(); // block 9... evicted by block 0 reload? LRU order: 7,8,9,0
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.io_inputs, 0, "block 9 should still be resident");
    }

    #[test]
    fn writes_count_outputs_and_populate_cache() {
        let dev = small_device();
        let f = dev.create_file();
        let before = dev.stats().snapshot();
        f.write(0, &[3u8; 33]).unwrap(); // blocks 0..=2
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.file_writes, 1);
        assert_eq!(d.bytes_written, 33);
        assert_eq!(d.io_outputs, 3);
        let before = dev.stats().snapshot();
        f.read(0, 33).unwrap();
        assert_eq!(dev.stats().snapshot().since(&before).io_inputs, 0);
    }

    #[test]
    fn append_returns_old_end() {
        let dev = small_device();
        let f = dev.create_file();
        assert_eq!(f.append(b"abc").unwrap(), 0);
        assert_eq!(f.append(b"def").unwrap(), 3);
        assert_eq!(f.read(0, 6).unwrap(), b"abcdef");
        assert_eq!(f.len().unwrap(), 6);
        assert!(!f.is_empty().unwrap());
    }

    #[test]
    fn handles_are_independent_files() {
        let dev = small_device();
        let a = dev.create_file();
        let b = dev.create_file();
        assert_ne!(a.id(), b.id());
        a.write(0, b"aaaa").unwrap();
        b.write(0, b"bb").unwrap();
        assert_eq!(a.len().unwrap(), 4);
        assert_eq!(b.len().unwrap(), 2);
    }

    #[test]
    fn truncate_invalidates_dead_blocks() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[5u8; 64]).unwrap();
        f.truncate(10).unwrap();
        assert_eq!(f.len().unwrap(), 10);
        // Growing again zero-fills.
        f.truncate(20).unwrap();
        let tail = f.read(10, 10).unwrap();
        assert_eq!(tail, vec![0u8; 10]);
    }

    #[test]
    fn injected_fault_fires_after_budget() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[9u8; 32]).unwrap();
        dev.inject_read_fault_after(Some(2));
        assert!(f.read(0, 4).is_ok());
        assert!(f.read(0, 4).is_ok());
        assert!(matches!(f.read(0, 4), Err(StorageError::InjectedFault)));
        dev.inject_read_fault_after(None);
        assert!(f.read(0, 4).is_ok());
    }

    #[test]
    fn short_read_fault_delivers_block_prefix() {
        let dev = small_device(); // 16-byte blocks
        let f = dev.create_file();
        f.write(0, &(0u8..64).collect::<Vec<_>>()).unwrap();
        dev.install_fault_plan(FaultPlan::new().rule(FaultRule::new(
            FaultOp::Read,
            FaultKind::ShortRead,
            FaultSchedule::Nth { n: 0 },
        )));
        let mut buf = [0xFFu8; 40];
        // Read starting at 8: the first block boundary is 16, so 8 bytes arrive.
        let err = dev.read_at(f.id(), 8, &mut buf).unwrap_err();
        assert!(matches!(err, StorageError::ShortRead { requested: 40, delivered: 8 }));
        assert_eq!(&buf[..8], &(8u8..16).collect::<Vec<_>>()[..]);
        assert_eq!(buf[8], 0xFF, "bytes past the cut must be untouched");
        // The rule fired once; subsequent reads succeed.
        assert!(f.read(0, 4).is_ok());
        assert_eq!(dev.fault_stats().short_reads, 1);
    }

    #[test]
    fn torn_write_fault_applies_aligned_prefix() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[0u8; 64]).unwrap();
        dev.install_fault_plan(FaultPlan::new().rule(FaultRule::new(
            FaultOp::Write,
            FaultKind::TornWrite,
            FaultSchedule::Nth { n: 0 },
        )));
        // Write 8..40 (spans boundary at 16 and 32): prefix up to 32 survives.
        let err = f.write(8, &[9u8; 32]).unwrap_err();
        assert!(matches!(err, StorageError::TornWrite { requested: 32, written: 24 }));
        let data = f.read(0, 64).unwrap();
        assert_eq!(&data[8..32], &[9u8; 24][..]);
        assert_eq!(&data[32..40], &[0u8; 8][..], "torn-off suffix never hit the file");
        assert_eq!(dev.fault_stats().torn_writes, 1);
    }

    #[test]
    fn power_cut_drops_unsynced_writes_and_poisons() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, b"durable!").unwrap();
        f.sync().unwrap();
        dev.install_fault_plan(FaultPlan::new().rule(FaultRule::new(
            FaultOp::Write,
            FaultKind::PowerCut,
            FaultSchedule::Nth { n: 1 },
        )));
        f.write(8, b"volatile").unwrap(); // survives until the cut fires
        let err = f.write(16, b"never").unwrap_err();
        assert!(matches!(err, StorageError::Poisoned));
        assert!(dev.is_poisoned());
        // Every further data operation fails until the plan is cleared.
        assert!(matches!(f.read(0, 4), Err(StorageError::Poisoned)));
        assert!(matches!(f.sync(), Err(StorageError::Poisoned)));
        assert!(matches!(f.truncate(0), Err(StorageError::Poisoned)));
        dev.clear_fault_plan();
        assert!(!dev.is_poisoned());
        // Only the synced image survived the cut.
        assert_eq!(f.len().unwrap(), 8);
        assert_eq!(f.read(0, 8).unwrap(), b"durable!");
        assert_eq!(dev.fault_stats().power_cuts, 1);
    }

    #[test]
    fn sync_refreshes_the_durable_image() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, b"first").unwrap();
        dev.install_fault_plan(FaultPlan::new().rule(FaultRule::new(
            FaultOp::Read,
            FaultKind::PowerCut,
            FaultSchedule::Nth { n: 0 },
        )));
        // Content at install time is the initial durable image; a sync
        // while the plan is armed moves the image forward.
        f.write(5, b" second").unwrap();
        f.sync().unwrap();
        f.write(12, b" third").unwrap();
        assert!(matches!(f.read(0, 1), Err(StorageError::Poisoned)));
        dev.clear_fault_plan();
        assert_eq!(f.read(0, 12).unwrap(), b"first second");
        assert_eq!(f.len().unwrap(), 12, "post-sync write was dropped");
    }

    #[test]
    fn panic_fault_panics_without_wedging_the_device() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[1u8; 16]).unwrap();
        dev.install_fault_plan(FaultPlan::new().rule(FaultRule::new(
            FaultOp::Read,
            FaultKind::Panic,
            FaultSchedule::Nth { n: 0 },
        )));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = f.read(0, 4);
        }));
        assert!(caught.is_err(), "the injected panic must propagate");
        // The file table was restored before the panic: the device works.
        assert_eq!(f.read(0, 4).unwrap(), vec![1u8; 4]);
        assert_eq!(dev.fault_stats().panics, 1);
    }

    #[test]
    fn seeded_chaos_is_replayable_end_to_end() {
        let run = |seed: u64| -> Vec<bool> {
            let dev = small_device();
            let f = dev.create_file();
            f.write(0, &[3u8; 64]).unwrap();
            dev.install_fault_plan(FaultPlan::new().rule(FaultRule::new(
                FaultOp::Read,
                FaultKind::Eio,
                FaultSchedule::Seeded { seed, per_mille: 300 },
            )));
            (0..100).map(|_| f.read(0, 8).is_err()).collect()
        };
        assert_eq!(run(7), run(7), "identical (seed, plan) replays identically");
        assert_ne!(run(7), run(8), "different seeds explore different schedules");
    }

    #[test]
    fn fault_stats_survive_plan_clears() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[0u8; 16]).unwrap();
        dev.inject_read_fault_after(Some(0));
        assert!(f.read(0, 4).is_err());
        dev.inject_read_fault_after(None);
        assert_eq!(dev.fault_stats().eio, 1);
        dev.inject_read_fault_after(Some(0));
        assert!(f.read(0, 4).is_err());
        dev.clear_fault_plan();
        assert_eq!(dev.fault_stats().eio, 2, "counters accumulate across plans");
        assert_eq!(dev.fault_stats().total_fired(), 2);
    }

    #[test]
    fn read_run_counts_one_syscall() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &(0u8..=255).collect::<Vec<_>>()).unwrap();
        dev.chill();
        let before = dev.stats().snapshot();
        let parts = f.read_run(16, &[16, 8, 24]).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], (16u8..32).collect::<Vec<_>>());
        assert_eq!(parts[1], (32u8..40).collect::<Vec<_>>());
        assert_eq!(parts[2], (40u8..64).collect::<Vec<_>>());
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.file_accesses, 1, "a run is one gathered system call");
        assert_eq!(d.bytes_read, 48);
        assert_eq!(d.io_inputs, 3, "bytes 16..64 span blocks 1,2,3");
        // Re-reading the same run hits the OS cache entirely.
        let before = dev.stats().snapshot();
        f.read_run(16, &[16, 8, 24]).unwrap();
        let d = dev.stats().snapshot().since(&before);
        assert_eq!((d.file_accesses, d.io_inputs), (1, 0));
    }

    #[test]
    fn read_vectored_disjoint_ranges() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[7u8; 160]).unwrap();
        dev.chill();
        let before = dev.stats().snapshot();
        let parts = f.read_vectored(&[(0, 16), (144, 16)]).unwrap();
        assert_eq!(parts, vec![vec![7u8; 16], vec![7u8; 16]]);
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.file_accesses, 1);
        assert_eq!(d.io_inputs, 2, "blocks 0 and 9 transferred");
    }

    #[test]
    fn read_vectored_respects_fault_injection() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[1u8; 64]).unwrap();
        dev.inject_read_fault_after(Some(1));
        assert!(f.read_run(0, &[16, 16]).is_ok());
        assert!(matches!(f.read_run(0, &[16, 16]), Err(StorageError::InjectedFault)));
    }

    #[test]
    fn unknown_file_is_reported() {
        let dev = small_device();
        let f = dev.create_file();
        // Forge a handle with a bad id by creating on another device.
        let other = small_device();
        let g = other.create_file();
        other.create_file();
        drop(g);
        // Read past end of existing file reports OutOfBounds not panic.
        assert!(matches!(f.read(100, 4), Err(StorageError::OutOfBounds { .. })));
    }

    #[test]
    fn empty_read_is_a_syscall_but_no_blocks() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, b"x").unwrap();
        let before = dev.stats().snapshot();
        let v = f.read(0, 0).unwrap();
        assert!(v.is_empty());
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.file_accesses, 1);
        assert_eq!(d.io_inputs, 0);
    }
}

//! The simulated I/O device: files + OS cache + accounting.
//!
//! A [`Device`] plays the role of the paper's evaluation platform. Every
//! read issued by an index backend is treated as one system call against the
//! simulated kernel: the request is counted, its bytes are counted, and each
//! 8 Kbyte block it touches either hits the simulated ULTRIX buffer cache or
//! is transferred from "disk" (incrementing the I/O-input counter that
//! `getrusage` reported on the real platform).
//!
//! Handles are cheap to clone and thread-safe; a single device is shared by
//! the dictionary, the B-tree file, and the Mneme files of one experiment so
//! the counters aggregate exactly like a process-wide `getrusage` call.

use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use poir_telemetry::{Event, Recorder, TraceOp};

use crate::backend::{ByteStore, FileBackend, InMemoryBackend};
use crate::cache::OsCache;
use crate::cost::CostModel;
use crate::error::{Result, StorageError};
use crate::stats::IoStats;
use crate::DEFAULT_BLOCK_SIZE;

/// Identifier of a file living on a [`Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Construction-time parameters of a [`Device`].
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Disk transfer block size in bytes. The paper's platform moves 8 Kbyte
    /// blocks; changing this is only useful for ablation studies.
    pub block_size: usize,
    /// Capacity of the simulated operating-system buffer cache, in blocks.
    /// The default models a few Mbytes of ULTRIX buffer cache.
    pub os_cache_blocks: usize,
    /// Per-event costs used to convert counters into simulated time.
    pub cost_model: CostModel,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            block_size: DEFAULT_BLOCK_SIZE,
            // 512 blocks * 8 KB = 4 MB of kernel buffer cache.
            os_cache_blocks: 512,
            cost_model: CostModel::default(),
        }
    }
}

struct DeviceInner {
    files: Vec<Option<Box<dyn ByteStore>>>,
    cache: OsCache,
    /// Fault injection: when `Some(n)`, the next `n` read system calls
    /// succeed and every read after that fails with
    /// [`StorageError::InjectedFault`].
    reads_before_fault: Option<u64>,
    /// Telemetry recorder, mirroring every [`IoStats`] update (plus
    /// OS-cache hit/miss events) so reports derived from telemetry match
    /// `IoSnapshot` deltas exactly. Disabled (no-op) by default.
    recorder: Recorder,
}

/// A simulated disk plus operating-system cache.
///
/// ```
/// use poir_storage::Device;
/// let device = Device::with_defaults();
/// let file = device.create_file();
/// file.write(0, b"hello").unwrap();
/// device.chill(); // purge the simulated OS cache (the paper's chill file)
/// assert_eq!(file.read(0, 5).unwrap(), b"hello");
/// assert_eq!(device.stats().io_inputs(), 1, "one 8 KB block came from disk");
/// ```
pub struct Device {
    inner: Mutex<DeviceInner>,
    stats: Arc<IoStats>,
    config: DeviceConfig,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("block_size", &self.config.block_size)
            .field("os_cache_blocks", &self.config.os_cache_blocks)
            .finish_non_exhaustive()
    }
}

impl Device {
    /// Creates a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Arc<Self> {
        assert!(config.block_size > 0, "block size must be positive");
        Arc::new(Device {
            inner: Mutex::new(DeviceInner {
                files: Vec::new(),
                cache: OsCache::new(config.os_cache_blocks),
                reads_before_fault: None,
                recorder: Recorder::disabled(),
            }),
            stats: Arc::new(IoStats::new()),
            config,
        })
    }

    /// Creates a device with the default (paper-platform) configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(DeviceConfig::default())
    }

    /// The shared I/O counters for this device.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The device's cost model.
    pub fn cost_model(&self) -> CostModel {
        self.config.cost_model
    }

    /// The device's transfer block size.
    pub fn block_size(&self) -> usize {
        self.config.block_size
    }

    /// OS-cache hit/miss counts `(hits, misses)` so far.
    pub fn os_cache_counters(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.cache.hits(), inner.cache.misses())
    }

    /// Attaches a telemetry recorder. Every subsequent `IoStats` update is
    /// mirrored into it at the same call site, alongside per-block OS-cache
    /// hit/miss events.
    pub fn attach_recorder(&self, recorder: Recorder) {
        self.inner.lock().recorder = recorder;
    }

    /// A clone of the currently attached telemetry recorder (disabled
    /// unless one was attached).
    pub fn recorder(&self) -> Recorder {
        self.inner.lock().recorder.clone()
    }

    /// Creates a new, empty in-memory file.
    pub fn create_file(self: &Arc<Self>) -> FileHandle {
        self.register(Box::new(InMemoryBackend::new()))
    }

    /// Creates (or opens) a file backed by the real file at `path`.
    pub fn create_file_at(self: &Arc<Self>, path: &Path) -> Result<FileHandle> {
        Ok(self.register(Box::new(FileBackend::open(path)?)))
    }

    fn register(self: &Arc<Self>, store: Box<dyn ByteStore>) -> FileHandle {
        let mut inner = self.inner.lock();
        let id = FileId(inner.files.len() as u32);
        inner.files.push(Some(store));
        FileHandle { device: Arc::clone(self), id }
    }

    /// Purges the simulated OS buffer cache — equivalent to the paper's
    /// 32 Mbyte "chill file" read between runs.
    pub fn chill(&self) {
        self.inner.lock().cache.clear();
    }

    /// After `reads` further read system calls, every read fails with
    /// [`StorageError::InjectedFault`]. Pass `None` to disarm.
    pub fn inject_read_fault_after(&self, reads: Option<u64>) {
        self.inner.lock().reads_before_fault = reads;
    }

    fn with_file<R>(
        &self,
        id: FileId,
        f: impl FnOnce(&mut DeviceInner, &mut Box<dyn ByteStore>) -> Result<R>,
    ) -> Result<R> {
        let mut inner = self.inner.lock();
        // Temporarily take the store out so we can pass &mut DeviceInner too.
        let mut store = inner
            .files
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .ok_or(StorageError::UnknownFile(id.0))?;
        let result = f(&mut inner, &mut store);
        inner.files[id.0 as usize] = Some(store);
        result
    }

    fn read_at(&self, id: FileId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let block = self.config.block_size as u64;
        self.with_file(id, |inner, store| {
            if let Some(n) = inner.reads_before_fault {
                if n == 0 {
                    return Err(StorageError::InjectedFault);
                }
                inner.reads_before_fault = Some(n - 1);
            }
            let traced = inner.recorder.trace_start();
            self.stats.record_read(buf.len() as u64);
            inner.recorder.incr(Event::FileAccess);
            inner.recorder.add(Event::BytesRead, buf.len() as u64);
            if !buf.is_empty() {
                let first = offset / block;
                let last = (offset + buf.len() as u64 - 1) / block;
                let mut disk_blocks = 0;
                for b in first..=last {
                    if !inner.cache.access((id.0, b)) {
                        disk_blocks += 1;
                        inner.cache.insert((id.0, b));
                    }
                }
                if disk_blocks > 0 {
                    self.stats.record_io_inputs(disk_blocks);
                }
                inner.recorder.add(Event::OsCacheHit, (last - first + 1) - disk_blocks);
                inner.recorder.add(Event::OsCacheMiss, disk_blocks);
                inner.recorder.add(Event::IoInput, disk_blocks);
            }
            let result = store.read_at(offset, buf);
            inner.recorder.trace_end(traced, TraceOp::DeviceRead, offset, None, buf.len() as u64);
            result
        })
    }

    fn read_at_vectored(&self, id: FileId, ranges: &[(u64, u32)]) -> Result<Vec<Vec<u8>>> {
        let block = self.config.block_size as u64;
        self.with_file(id, |inner, store| {
            if let Some(n) = inner.reads_before_fault {
                if n == 0 {
                    return Err(StorageError::InjectedFault);
                }
                inner.reads_before_fault = Some(n - 1);
            }
            // One gathered system call, like preadv: a single file access
            // whose byte count is the sum of all requested ranges.
            let traced = inner.recorder.trace_start();
            let total: u64 = ranges.iter().map(|&(_, len)| len as u64).sum();
            self.stats.record_read(total);
            inner.recorder.incr(Event::FileAccess);
            inner.recorder.add(Event::BytesRead, total);
            let mut disk_blocks = 0;
            let mut touched = 0;
            for &(offset, len) in ranges {
                if len == 0 {
                    continue;
                }
                let first = offset / block;
                let last = (offset + len as u64 - 1) / block;
                touched += last - first + 1;
                for b in first..=last {
                    if !inner.cache.access((id.0, b)) {
                        disk_blocks += 1;
                        inner.cache.insert((id.0, b));
                    }
                }
            }
            if disk_blocks > 0 {
                self.stats.record_io_inputs(disk_blocks);
            }
            inner.recorder.add(Event::OsCacheHit, touched - disk_blocks);
            inner.recorder.add(Event::OsCacheMiss, disk_blocks);
            inner.recorder.add(Event::IoInput, disk_blocks);
            let mut out = Vec::with_capacity(ranges.len());
            for &(offset, len) in ranges {
                let mut buf = vec![0u8; len as usize];
                store.read_at(offset, &mut buf)?;
                out.push(buf);
            }
            let start = ranges.first().map_or(0, |&(offset, _)| offset);
            inner.recorder.trace_end(traced, TraceOp::DeviceRead, start, None, total);
            Ok(out)
        })
    }

    fn write_at(&self, id: FileId, offset: u64, data: &[u8]) -> Result<()> {
        let block = self.config.block_size as u64;
        self.with_file(id, |inner, store| {
            let traced = inner.recorder.trace_start();
            self.stats.record_write(data.len() as u64);
            inner.recorder.incr(Event::FileWrite);
            inner.recorder.add(Event::BytesWritten, data.len() as u64);
            if !data.is_empty() {
                let first = offset / block;
                let last = (offset + data.len() as u64 - 1) / block;
                self.stats.record_io_outputs(last - first + 1);
                inner.recorder.add(Event::IoOutput, last - first + 1);
                // A UNIX buffer cache keeps written blocks resident.
                for b in first..=last {
                    inner.cache.insert((id.0, b));
                }
            }
            let result = store.write_at(offset, data);
            inner.recorder.trace_end(traced, TraceOp::DeviceWrite, offset, None, data.len() as u64);
            result
        })
    }

    fn len(&self, id: FileId) -> Result<u64> {
        self.with_file(id, |_, store| Ok(store.len()))
    }

    fn truncate(&self, id: FileId, len: u64) -> Result<()> {
        let block = self.config.block_size as u64;
        self.with_file(id, |inner, store| {
            let old_len = store.len();
            store.truncate(len)?;
            if len < old_len {
                let first_dead = len / block;
                let last_dead = old_len.saturating_sub(1) / block;
                for b in first_dead..=last_dead {
                    inner.cache.invalidate((id.0, b));
                }
            }
            Ok(())
        })
    }

    fn sync(&self, id: FileId) -> Result<()> {
        self.with_file(id, |_, store| store.sync())
    }
}

/// A handle to one file on a [`Device`]. Clones share the same file.
#[derive(Debug, Clone)]
pub struct FileHandle {
    device: Arc<Device>,
    id: FileId,
}

impl FileHandle {
    /// The id of this file on its device.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// The device this file lives on.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Current length of the file in bytes.
    pub fn len(&self) -> Result<u64> {
        self.device.len(self.id)
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Reads exactly `buf.len()` bytes starting at `offset`.
    ///
    /// Counts as one file access (system call) regardless of length.
    pub fn read_into(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.device.read_at(self.id, offset, buf)
    }

    /// Reads `len` bytes starting at `offset` into a fresh vector.
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read_into(offset, &mut buf)?;
        Ok(buf)
    }

    /// Reads several `(offset, len)` ranges in one gathered system call,
    /// like `preadv`: the whole request counts as **one** file access, and
    /// each distinct block touched counts at most one I/O input.
    ///
    /// Ranges may be disjoint; callers batching adjacent segments should
    /// prefer [`FileHandle::read_run`], which expresses the common
    /// contiguous case directly.
    pub fn read_vectored(&self, ranges: &[(u64, u32)]) -> Result<Vec<Vec<u8>>> {
        self.device.read_at_vectored(self.id, ranges)
    }

    /// Reads a contiguous run of `lens.len()` adjacent chunks starting at
    /// `start` in one system call, returning one buffer per chunk.
    ///
    /// This is the coalesced-batch primitive: a run of physically adjacent
    /// segments is transferred with a single file access instead of one
    /// access per segment.
    pub fn read_run(&self, start: u64, lens: &[u32]) -> Result<Vec<Vec<u8>>> {
        let mut ranges = Vec::with_capacity(lens.len());
        let mut offset = start;
        for &len in lens {
            ranges.push((offset, len));
            offset += len as u64;
        }
        self.device.read_at_vectored(self.id, &ranges)
    }

    /// Writes `data` at `offset`, extending the file if needed.
    ///
    /// Counts as one write system call.
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.device.write_at(self.id, offset, data)
    }

    /// Appends `data` at the end of the file, returning the offset it was
    /// written at.
    pub fn append(&self, data: &[u8]) -> Result<u64> {
        let offset = self.len()?;
        self.write(offset, data)?;
        Ok(offset)
    }

    /// Shrinks or extends the file to exactly `len` bytes.
    pub fn truncate(&self, len: u64) -> Result<()> {
        self.device.truncate(self.id, len)
    }

    /// Forces the file to durable storage.
    pub fn sync(&self) -> Result<()> {
        self.device.sync(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_device() -> Arc<Device> {
        Device::new(DeviceConfig {
            block_size: 16,
            os_cache_blocks: 4,
            cost_model: CostModel::free(),
        })
    }

    #[test]
    fn read_counts_one_syscall_and_blocks() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[7u8; 64]).unwrap();
        let before = dev.stats().snapshot();
        let data = f.read(0, 40).unwrap(); // spans blocks 0..=2
        assert_eq!(data, vec![7u8; 40]);
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.file_accesses, 1);
        assert_eq!(d.bytes_read, 40);
        // Blocks were cached by the write, so no disk inputs.
        assert_eq!(d.io_inputs, 0);
    }

    #[test]
    fn chill_forces_disk_transfers() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[1u8; 64]).unwrap();
        dev.chill();
        let before = dev.stats().snapshot();
        f.read(0, 40).unwrap();
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.io_inputs, 3, "blocks 0,1,2 must come from disk after chill");
        // A second read of the same range is now cache-resident.
        let before = dev.stats().snapshot();
        f.read(0, 40).unwrap();
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.io_inputs, 0);
    }

    #[test]
    fn cache_capacity_bounds_residency() {
        let dev = small_device(); // 4-block cache
        let f = dev.create_file();
        f.write(0, &[2u8; 160]).unwrap(); // 10 blocks
        dev.chill();
        f.read(0, 160).unwrap(); // brings in 10 blocks; only last 4 stay
        let before = dev.stats().snapshot();
        f.read(0, 16).unwrap(); // block 0 was evicted
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.io_inputs, 1);
        let before = dev.stats().snapshot();
        f.read(144, 16).unwrap(); // block 9... evicted by block 0 reload? LRU order: 7,8,9,0
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.io_inputs, 0, "block 9 should still be resident");
    }

    #[test]
    fn writes_count_outputs_and_populate_cache() {
        let dev = small_device();
        let f = dev.create_file();
        let before = dev.stats().snapshot();
        f.write(0, &[3u8; 33]).unwrap(); // blocks 0..=2
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.file_writes, 1);
        assert_eq!(d.bytes_written, 33);
        assert_eq!(d.io_outputs, 3);
        let before = dev.stats().snapshot();
        f.read(0, 33).unwrap();
        assert_eq!(dev.stats().snapshot().since(&before).io_inputs, 0);
    }

    #[test]
    fn append_returns_old_end() {
        let dev = small_device();
        let f = dev.create_file();
        assert_eq!(f.append(b"abc").unwrap(), 0);
        assert_eq!(f.append(b"def").unwrap(), 3);
        assert_eq!(f.read(0, 6).unwrap(), b"abcdef");
        assert_eq!(f.len().unwrap(), 6);
        assert!(!f.is_empty().unwrap());
    }

    #[test]
    fn handles_are_independent_files() {
        let dev = small_device();
        let a = dev.create_file();
        let b = dev.create_file();
        assert_ne!(a.id(), b.id());
        a.write(0, b"aaaa").unwrap();
        b.write(0, b"bb").unwrap();
        assert_eq!(a.len().unwrap(), 4);
        assert_eq!(b.len().unwrap(), 2);
    }

    #[test]
    fn truncate_invalidates_dead_blocks() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[5u8; 64]).unwrap();
        f.truncate(10).unwrap();
        assert_eq!(f.len().unwrap(), 10);
        // Growing again zero-fills.
        f.truncate(20).unwrap();
        let tail = f.read(10, 10).unwrap();
        assert_eq!(tail, vec![0u8; 10]);
    }

    #[test]
    fn injected_fault_fires_after_budget() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[9u8; 32]).unwrap();
        dev.inject_read_fault_after(Some(2));
        assert!(f.read(0, 4).is_ok());
        assert!(f.read(0, 4).is_ok());
        assert!(matches!(f.read(0, 4), Err(StorageError::InjectedFault)));
        dev.inject_read_fault_after(None);
        assert!(f.read(0, 4).is_ok());
    }

    #[test]
    fn read_run_counts_one_syscall() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &(0u8..=255).collect::<Vec<_>>()).unwrap();
        dev.chill();
        let before = dev.stats().snapshot();
        let parts = f.read_run(16, &[16, 8, 24]).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], (16u8..32).collect::<Vec<_>>());
        assert_eq!(parts[1], (32u8..40).collect::<Vec<_>>());
        assert_eq!(parts[2], (40u8..64).collect::<Vec<_>>());
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.file_accesses, 1, "a run is one gathered system call");
        assert_eq!(d.bytes_read, 48);
        assert_eq!(d.io_inputs, 3, "bytes 16..64 span blocks 1,2,3");
        // Re-reading the same run hits the OS cache entirely.
        let before = dev.stats().snapshot();
        f.read_run(16, &[16, 8, 24]).unwrap();
        let d = dev.stats().snapshot().since(&before);
        assert_eq!((d.file_accesses, d.io_inputs), (1, 0));
    }

    #[test]
    fn read_vectored_disjoint_ranges() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[7u8; 160]).unwrap();
        dev.chill();
        let before = dev.stats().snapshot();
        let parts = f.read_vectored(&[(0, 16), (144, 16)]).unwrap();
        assert_eq!(parts, vec![vec![7u8; 16], vec![7u8; 16]]);
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.file_accesses, 1);
        assert_eq!(d.io_inputs, 2, "blocks 0 and 9 transferred");
    }

    #[test]
    fn read_vectored_respects_fault_injection() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, &[1u8; 64]).unwrap();
        dev.inject_read_fault_after(Some(1));
        assert!(f.read_run(0, &[16, 16]).is_ok());
        assert!(matches!(f.read_run(0, &[16, 16]), Err(StorageError::InjectedFault)));
    }

    #[test]
    fn unknown_file_is_reported() {
        let dev = small_device();
        let f = dev.create_file();
        // Forge a handle with a bad id by creating on another device.
        let other = small_device();
        let g = other.create_file();
        other.create_file();
        drop(g);
        // Read past end of existing file reports OutOfBounds not panic.
        assert!(matches!(f.read(100, 4), Err(StorageError::OutOfBounds { .. })));
    }

    #[test]
    fn empty_read_is_a_syscall_but_no_blocks() {
        let dev = small_device();
        let f = dev.create_file();
        f.write(0, b"x").unwrap();
        let before = dev.stats().snapshot();
        let v = f.read(0, 0).unwrap();
        assert!(v.is_empty());
        let d = dev.stats().snapshot().since(&before);
        assert_eq!(d.file_accesses, 1);
        assert_eq!(d.io_inputs, 0);
    }
}

//! Cost model converting I/O event counts into simulated elapsed time.
//!
//! The paper reports "system cpu time plus time spent waiting for I/O to
//! complete" (Table 4) as the precise measure of the replaced subsystem.
//! On the 1993 platform this time is dominated by three activities, each of
//! which we charge per event:
//!
//! * reading an 8 Kbyte block from the SCSI disk (seek + rotation +
//!   transfer) on an operating-system cache miss,
//! * executing a read/write system call (user/kernel crossing plus
//!   file-system lookup work),
//! * copying requested bytes between the kernel buffer cache and user space.
//!
//! Back-solving the paper's own numbers (e.g. TIPSTER, B-tree: 96,352 I/O
//! inputs and 841 Mbytes copied in 861.75 s) gives roughly 8.5 ms per block
//! read and a few microseconds per copied Kbyte, consistent with an RZ58-era
//! disk; the defaults below use those figures. Absolute values only scale
//! the reported times — the comparisons in Tables 3-5 depend on the event
//! *counts*, which are exact.

use std::time::Duration;

use poir_telemetry::{Event, TelemetrySnapshot};

use crate::stats::IoSnapshot;

/// Simulated time, accumulated in microseconds.
///
/// A thin wrapper rather than [`Duration`] so arithmetic on it is explicit
/// and cheap inside hot accounting paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimTime {
    micros: u64,
}

impl SimTime {
    /// Zero elapsed time.
    pub const ZERO: SimTime = SimTime { micros: 0 };

    /// Constructs from a microsecond count.
    pub fn from_micros(micros: u64) -> Self {
        SimTime { micros }
    }

    /// Total microseconds.
    pub fn as_micros(&self) -> u64 {
        self.micros
    }

    /// Total seconds, as the paper's tables report.
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Converts into a std [`Duration`].
    pub fn to_duration(&self) -> Duration {
        Duration::from_micros(self.micros)
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime { micros: self.micros + rhs.micros }
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.micros += rhs.micros;
    }
}

impl std::ops::Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime { micros: self.micros.saturating_sub(rhs.micros) }
    }
}

/// Per-event costs for the simulated platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of transferring one block from disk into the OS cache.
    pub block_read_us: u64,
    /// Cost of writing one block from the OS cache to disk.
    pub block_write_us: u64,
    /// Fixed cost of a read or write system call.
    pub syscall_us: u64,
    /// Cost of copying one Kbyte between kernel and user space.
    pub copy_us_per_kb: u64,
}

impl Default for CostModel {
    /// Defaults calibrated against the paper's DECstation 5000/240 + RZ58
    /// figures (see module docs).
    fn default() -> Self {
        CostModel {
            block_read_us: 8_500,
            block_write_us: 8_500,
            syscall_us: 120,
            copy_us_per_kb: 6,
        }
    }
}

impl CostModel {
    /// A model in which every event is free; useful in unit tests that only
    /// care about counters.
    pub fn free() -> Self {
        CostModel { block_read_us: 0, block_write_us: 0, syscall_us: 0, copy_us_per_kb: 0 }
    }

    /// Simulated system-CPU + I/O time for the events in `delta`.
    ///
    /// This is the quantity Table 4 reports per query set.
    pub fn charge(&self, delta: &IoSnapshot) -> SimTime {
        let micros = delta.io_inputs * self.block_read_us
            + delta.io_outputs * self.block_write_us
            + (delta.file_accesses + delta.file_writes) * self.syscall_us
            + ((delta.bytes_read + delta.bytes_written) / 1024) * self.copy_us_per_kb;
        SimTime::from_micros(micros)
    }

    /// Same charge computed from a telemetry counter delta instead of
    /// `IoStats`. Because the device records both at the same call sites,
    /// `charge_telemetry(&t)` equals `charge(&io)` for deltas taken over
    /// the same interval.
    pub fn charge_telemetry(&self, delta: &TelemetrySnapshot) -> SimTime {
        self.charge(&IoSnapshot {
            io_inputs: delta.get(Event::IoInput),
            io_outputs: delta.get(Event::IoOutput),
            file_accesses: delta.get(Event::FileAccess),
            file_writes: delta.get(Event::FileWrite),
            bytes_read: delta.get(Event::BytesRead),
            bytes_written: delta.get(Event::BytesWritten),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_arithmetic() {
        let a = SimTime::from_micros(1_500_000);
        let b = SimTime::from_micros(500_000);
        assert_eq!((a + b).as_secs_f64(), 2.0);
        assert_eq!((a - b).as_micros(), 1_000_000);
        assert_eq!((b - a), SimTime::ZERO);
        let mut c = SimTime::ZERO;
        c += a;
        assert_eq!(c, a);
        assert_eq!(a.to_duration(), Duration::from_micros(1_500_000));
    }

    #[test]
    fn charge_sums_each_component() {
        let m =
            CostModel { block_read_us: 100, block_write_us: 50, syscall_us: 10, copy_us_per_kb: 1 };
        let d = IoSnapshot {
            io_inputs: 2,
            io_outputs: 1,
            file_accesses: 3,
            file_writes: 1,
            bytes_read: 2048,
            bytes_written: 1024,
        };
        // 2*100 + 1*50 + 4*10 + 3*1 = 293
        assert_eq!(m.charge(&d).as_micros(), 293);
    }

    #[test]
    fn free_model_charges_nothing() {
        let d = IoSnapshot {
            io_inputs: 10,
            bytes_read: 1 << 20,
            file_accesses: 5,
            ..Default::default()
        };
        assert_eq!(CostModel::free().charge(&d), SimTime::ZERO);
    }

    #[test]
    fn default_model_matches_paper_magnitude() {
        // TIPSTER / B-tree row of Table 5: I = 96,352 blocks, B = 841,304 KB.
        // Paper's Table 4 reports 861.75 s; the default model should land in
        // the same order of magnitude (hundreds of seconds).
        let d = IoSnapshot {
            io_inputs: 96_352,
            bytes_read: 841_304 * 1024,
            file_accesses: 60_000,
            ..Default::default()
        };
        let t = CostModel::default().charge(&d).as_secs_f64();
        assert!(t > 500.0 && t < 1500.0, "simulated time {t} out of expected band");
    }
}

//! Error type shared by every layer that touches the simulated device.

use std::fmt;

/// Errors surfaced by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// The referenced file id was never created or has been removed.
    UnknownFile(u32),
    /// A read extended past the end of the file.
    ///
    /// Carries `(requested_end, file_len)`.
    OutOfBounds { end: u64, len: u64 },
    /// The underlying operating system file failed.
    Io(std::io::Error),
    /// Fault injected by a test harness (see [`crate::Device::inject_read_fault_after`]).
    InjectedFault,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownFile(id) => write!(f, "unknown file id {id}"),
            StorageError::OutOfBounds { end, len } => {
                write!(f, "read past end of file: end {end} > len {len}")
            }
            StorageError::Io(e) => write!(f, "os i/o error: {e}"),
            StorageError::InjectedFault => write!(f, "injected storage fault"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(StorageError::UnknownFile(7).to_string(), "unknown file id 7");
        assert_eq!(
            StorageError::OutOfBounds { end: 10, len: 4 }.to_string(),
            "read past end of file: end 10 > len 4"
        );
        assert_eq!(StorageError::InjectedFault.to_string(), "injected storage fault");
    }

    #[test]
    fn io_error_is_wrapped_with_source() {
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

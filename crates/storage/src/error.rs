//! Error type shared by every layer that touches the simulated device.

use std::fmt;

/// Errors surfaced by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// The referenced file id was never created or has been removed.
    UnknownFile(u32),
    /// A read extended past the end of the file.
    ///
    /// Carries `(requested_end, file_len)`.
    OutOfBounds { end: u64, len: u64 },
    /// The underlying operating system file failed.
    Io(std::io::Error),
    /// Fault injected by a failpoint (see [`crate::FaultPlan`]); the EIO
    /// analogue.
    InjectedFault,
    /// An injected short read: only `delivered` of the `requested` bytes
    /// (a block-aligned prefix) reached the caller's buffer.
    ShortRead { requested: u64, delivered: u64 },
    /// An injected torn write: only `written` of the `requested` bytes
    /// (a block-aligned prefix) were applied.
    TornWrite { requested: u64, written: u64 },
    /// The device was poisoned by an injected power cut; every operation
    /// fails until the fault plan is cleared.
    Poisoned,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownFile(id) => write!(f, "unknown file id {id}"),
            StorageError::OutOfBounds { end, len } => {
                write!(f, "read past end of file: end {end} > len {len}")
            }
            StorageError::Io(e) => write!(f, "os i/o error: {e}"),
            StorageError::InjectedFault => write!(f, "injected storage fault"),
            StorageError::ShortRead { requested, delivered } => {
                write!(f, "injected short read: delivered {delivered} of {requested} bytes")
            }
            StorageError::TornWrite { requested, written } => {
                write!(f, "injected torn write: applied {written} of {requested} bytes")
            }
            StorageError::Poisoned => {
                write!(f, "device poisoned by injected power cut")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(StorageError::UnknownFile(7).to_string(), "unknown file id 7");
        assert_eq!(
            StorageError::OutOfBounds { end: 10, len: 4 }.to_string(),
            "read past end of file: end 10 > len 4"
        );
        assert_eq!(StorageError::InjectedFault.to_string(), "injected storage fault");
        assert_eq!(
            StorageError::ShortRead { requested: 64, delivered: 16 }.to_string(),
            "injected short read: delivered 16 of 64 bytes"
        );
        assert_eq!(
            StorageError::TornWrite { requested: 64, written: 48 }.to_string(),
            "injected torn write: applied 48 of 64 bytes"
        );
        assert_eq!(StorageError::Poisoned.to_string(), "device poisoned by injected power cut");
    }

    #[test]
    fn io_error_is_wrapped_with_source() {
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

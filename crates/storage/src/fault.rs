//! Deterministic fault injection: seeded failpoints for the simulated device.
//!
//! A [`FaultPlan`] is a list of [`FaultRule`]s installed on a
//! [`crate::Device`]. Each rule matches a subset of device operations
//! (optionally one file, one operation kind) and decides — from a purely
//! deterministic schedule — whether the matched operation fails and how.
//! Because every schedule is either a counter or a seeded xorshift stream,
//! any failure run is replayable from `(seed, plan)` alone: the same plan on
//! the same workload fires the same faults in the same order.
//!
//! Fault kinds model the classic storage failure taxonomy:
//!
//! * [`FaultKind::Eio`] — the operation fails outright (an `EIO` analogue).
//! * [`FaultKind::ShortRead`] — a read delivers only a block-aligned prefix.
//! * [`FaultKind::TornWrite`] — a write applies only a block-aligned prefix.
//! * [`FaultKind::PowerCut`] — every write since the last `sync` is dropped
//!   (on **all** files of the device) and the device is poisoned: further
//!   operations fail with [`crate::StorageError::Poisoned`] until the plan
//!   is cleared, mimicking a machine that stays down until it is rebooted.
//! * [`FaultKind::Panic`] — the operation panics after releasing the device
//!   lock, for exercising `catch_unwind` worker isolation above.

use crate::device::FileId;

/// Which device operation a [`FaultRule`] matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Plain and vectored reads.
    Read,
    /// Writes (appends included).
    Write,
    /// Durability barriers ([`crate::FileHandle::sync`]).
    Sync,
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The operation fails with [`crate::StorageError::InjectedFault`].
    Eio,
    /// A read delivers only the prefix up to the first block boundary and
    /// fails with [`crate::StorageError::ShortRead`]. On non-read
    /// operations this degrades to [`FaultKind::Eio`].
    ShortRead,
    /// A write applies only its largest block-aligned proper prefix and
    /// fails with [`crate::StorageError::TornWrite`]. On non-write
    /// operations this degrades to [`FaultKind::Eio`].
    TornWrite,
    /// All writes not yet covered by a `sync` are dropped on every file of
    /// the device, and the device is poisoned until the plan is cleared.
    PowerCut,
    /// The operation panics (after the device lock is released and the
    /// file table is restored, so the device itself stays usable).
    Panic,
}

/// When a matching rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSchedule {
    /// The first `skip` matching operations succeed; every matching
    /// operation after that fires.
    AfterOps {
        /// Number of matching operations to let through first.
        skip: u64,
    },
    /// Exactly the `n`-th matching operation fires (0-based), once.
    Nth {
        /// 0-based index of the matching operation that fires.
        n: u64,
    },
    /// Seeded Bernoulli trial: each matching operation fires with
    /// probability `per_mille / 1000`, drawn from a per-rule xorshift64
    /// stream. Deterministic given the seed and the match sequence.
    Seeded {
        /// Seed of this rule's private xorshift64 stream.
        seed: u64,
        /// Firing probability in thousandths (0 = never, 1000 = always).
        per_mille: u32,
    },
}

/// One failpoint: a matcher, a fault kind, and a deterministic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Only operations on this file match (`None` = any file).
    pub file: Option<FileId>,
    /// Only this operation kind matches.
    pub op: FaultOp,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// When the rule fires, over the sequence of matching operations.
    pub schedule: FaultSchedule,
    /// Maximum number of times this rule may fire (`None` = unlimited).
    pub max_fires: Option<u64>,
}

impl FaultRule {
    /// A rule matching `op` on any file, firing `kind` per `schedule`.
    pub fn new(op: FaultOp, kind: FaultKind, schedule: FaultSchedule) -> Self {
        FaultRule { file: None, op, kind, schedule, max_fires: None }
    }

    /// Restricts the rule to one file.
    pub fn on_file(mut self, file: FileId) -> Self {
        self.file = Some(file);
        self
    }

    /// Caps how many times the rule may fire.
    pub fn max_fires(mut self, n: u64) -> Self {
        self.max_fires = Some(n);
        self
    }
}

/// A deterministic fault-injection plan: rules consulted in declaration
/// order on every matching operation; the first rule that fires wins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The failpoints, in priority order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends a rule (builder style).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Whether any rule can fire a [`FaultKind::PowerCut`] (the device
    /// must then track durable images of every file).
    pub fn has_power_cut(&self) -> bool {
        self.rules.iter().any(|r| r.kind == FaultKind::PowerCut)
    }
}

/// Lifetime fault-injection counters for one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations failed with [`crate::StorageError::InjectedFault`].
    pub eio: u64,
    /// Reads cut short at a block boundary.
    pub short_reads: u64,
    /// Writes torn at a block boundary.
    pub torn_writes: u64,
    /// Power cuts fired (each poisons the device until cleared).
    pub power_cuts: u64,
    /// Injected panics.
    pub panics: u64,
    /// Operations that matched at least one rule, fired or not.
    pub ops_matched: u64,
}

impl FaultStats {
    /// Total faults fired, over all kinds.
    pub fn total_fired(&self) -> u64 {
        self.eio + self.short_reads + self.torn_writes + self.power_cuts + self.panics
    }
}

/// One xorshift64 step (Marsaglia); the state must be nonzero.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Maps an arbitrary user seed onto a valid (nonzero) xorshift state.
fn seed_to_state(seed: u64) -> u64 {
    let mixed = seed ^ 0x9E37_79B9_7F4A_7C15;
    if mixed == 0 {
        0x2545_F491_4F6C_DD1D
    } else {
        mixed
    }
}

/// Runtime state of one installed rule.
#[derive(Debug, Clone)]
pub(crate) struct RuleState {
    rule: FaultRule,
    /// Matching operations seen so far (the schedule's sequence index).
    matched: u64,
    /// Times this rule has fired.
    fired: u64,
    /// Private xorshift stream for [`FaultSchedule::Seeded`].
    rng: u64,
}

impl RuleState {
    fn new(rule: FaultRule) -> Self {
        let rng = match rule.schedule {
            FaultSchedule::Seeded { seed, .. } => seed_to_state(seed),
            _ => 1,
        };
        RuleState { rule, matched: 0, fired: 0, rng }
    }
}

/// Runtime state of an installed [`FaultPlan`] (lives inside the device's
/// existing mutex; a disarmed device pays only an `Option` check).
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    rules: Vec<RuleState>,
    stats: FaultStats,
    /// Set by a fired [`FaultKind::PowerCut`]; cleared only with the plan.
    pub(crate) poisoned: bool,
    /// Last-synced byte image per file id, tracked while a power-cut rule
    /// is armed. Indices parallel the device's file table.
    pub(crate) durable: Vec<Vec<u8>>,
    /// Whether `durable` is being maintained (plan contains a power cut).
    pub(crate) track_durable: bool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, prior_stats: FaultStats) -> Self {
        let track_durable = plan.has_power_cut();
        FaultState {
            rules: plan.rules.into_iter().map(RuleState::new).collect(),
            stats: prior_stats,
            poisoned: false,
            durable: Vec::new(),
            track_durable,
        }
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decides whether `op` on `file` faults, advancing every matching
    /// rule's schedule. The first rule that fires wins.
    pub(crate) fn decide(&mut self, file: FileId, op: FaultOp) -> Option<FaultKind> {
        let mut fired = None;
        for rs in &mut self.rules {
            if rs.rule.op != op {
                continue;
            }
            if let Some(f) = rs.rule.file {
                if f != file {
                    continue;
                }
            }
            if let Some(max) = rs.rule.max_fires {
                if rs.fired >= max {
                    continue;
                }
            }
            let seq = rs.matched;
            rs.matched += 1;
            self.stats.ops_matched += 1;
            if fired.is_some() {
                // A higher-priority rule already fired for this op; later
                // rules still consume their sequence slot so their
                // schedules stay aligned with the operation stream.
                continue;
            }
            let fire = match rs.rule.schedule {
                FaultSchedule::AfterOps { skip } => seq >= skip,
                FaultSchedule::Nth { n } => seq == n,
                FaultSchedule::Seeded { per_mille, .. } => {
                    (xorshift64(&mut rs.rng) % 1000) < per_mille as u64
                }
            };
            if fire {
                rs.fired += 1;
                fired = Some(rs.rule.kind);
            }
        }
        if let Some(kind) = fired {
            match kind {
                FaultKind::Eio => self.stats.eio += 1,
                FaultKind::ShortRead => self.stats.short_reads += 1,
                FaultKind::TornWrite => self.stats.torn_writes += 1,
                FaultKind::PowerCut => self.stats.power_cuts += 1,
                FaultKind::Panic => self.stats.panics += 1,
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decide_n(state: &mut FaultState, n: usize) -> Vec<Option<FaultKind>> {
        (0..n).map(|_| state.decide(FileId(0), FaultOp::Read)).collect()
    }

    #[test]
    fn after_ops_fires_forever_past_the_budget() {
        let plan = FaultPlan::new().rule(FaultRule::new(
            FaultOp::Read,
            FaultKind::Eio,
            FaultSchedule::AfterOps { skip: 2 },
        ));
        let mut st = FaultState::new(plan, FaultStats::default());
        let got = decide_n(&mut st, 5);
        assert_eq!(
            got,
            vec![None, None, Some(FaultKind::Eio), Some(FaultKind::Eio), Some(FaultKind::Eio)]
        );
        assert_eq!(st.stats().eio, 3);
        assert_eq!(st.stats().ops_matched, 5);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let plan = FaultPlan::new().rule(FaultRule::new(
            FaultOp::Read,
            FaultKind::ShortRead,
            FaultSchedule::Nth { n: 1 },
        ));
        let mut st = FaultState::new(plan, FaultStats::default());
        let got = decide_n(&mut st, 4);
        assert_eq!(got, vec![None, Some(FaultKind::ShortRead), None, None]);
    }

    #[test]
    fn seeded_stream_is_replayable() {
        let rule = FaultRule::new(
            FaultOp::Read,
            FaultKind::Eio,
            FaultSchedule::Seeded { seed: 42, per_mille: 250 },
        );
        let mut a = FaultState::new(FaultPlan::new().rule(rule), FaultStats::default());
        let mut b = FaultState::new(FaultPlan::new().rule(rule), FaultStats::default());
        let run_a = decide_n(&mut a, 200);
        let run_b = decide_n(&mut b, 200);
        assert_eq!(run_a, run_b, "same (seed, plan) must fire identically");
        let fired = run_a.iter().filter(|d| d.is_some()).count();
        assert!(fired > 20 && fired < 90, "~25% of 200 trials, got {fired}");
    }

    #[test]
    fn file_and_op_matchers_filter() {
        let plan = FaultPlan::new().rule(
            FaultRule::new(FaultOp::Write, FaultKind::Eio, FaultSchedule::AfterOps { skip: 0 })
                .on_file(FileId(3)),
        );
        let mut st = FaultState::new(plan, FaultStats::default());
        assert_eq!(st.decide(FileId(3), FaultOp::Read), None, "wrong op");
        assert_eq!(st.decide(FileId(2), FaultOp::Write), None, "wrong file");
        assert_eq!(st.decide(FileId(3), FaultOp::Write), Some(FaultKind::Eio));
        assert_eq!(st.stats().ops_matched, 1);
    }

    #[test]
    fn max_fires_caps_a_rule() {
        let plan = FaultPlan::new().rule(
            FaultRule::new(FaultOp::Read, FaultKind::Eio, FaultSchedule::AfterOps { skip: 0 })
                .max_fires(2),
        );
        let mut st = FaultState::new(plan, FaultStats::default());
        let got = decide_n(&mut st, 4);
        assert_eq!(got, vec![Some(FaultKind::Eio), Some(FaultKind::Eio), None, None]);
    }

    #[test]
    fn first_firing_rule_wins_but_later_schedules_advance() {
        let plan = FaultPlan::new()
            .rule(FaultRule::new(FaultOp::Read, FaultKind::Eio, FaultSchedule::Nth { n: 0 }))
            .rule(FaultRule::new(FaultOp::Read, FaultKind::ShortRead, FaultSchedule::Nth { n: 1 }));
        let mut st = FaultState::new(plan, FaultStats::default());
        assert_eq!(st.decide(FileId(0), FaultOp::Read), Some(FaultKind::Eio));
        assert_eq!(
            st.decide(FileId(0), FaultOp::Read),
            Some(FaultKind::ShortRead),
            "second rule's sequence advanced during the first op"
        );
    }

    #[test]
    fn power_cut_plans_track_durable_images() {
        let eio = FaultPlan::new().rule(FaultRule::new(
            FaultOp::Read,
            FaultKind::Eio,
            FaultSchedule::Nth { n: 0 },
        ));
        assert!(!eio.has_power_cut());
        let cut = FaultPlan::new().rule(FaultRule::new(
            FaultOp::Write,
            FaultKind::PowerCut,
            FaultSchedule::Nth { n: 3 },
        ));
        assert!(cut.has_power_cut());
        assert!(FaultState::new(cut, FaultStats::default()).track_durable);
    }
}

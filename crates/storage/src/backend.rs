//! Byte-level backing stores for simulated files.
//!
//! A [`ByteStore`] holds the raw contents of one file. Two implementations
//! are provided:
//!
//! * [`InMemoryBackend`] — a growable byte vector. Deterministic and fast;
//!   used by the benchmark harness so reproduction runs do not depend on the
//!   host file system.
//! * [`FileBackend`] — a real operating-system file, used when the store
//!   must survive process restarts (examples and recovery tests).
//!
//! All accounting (caching, block counting, cost charging) happens above
//! this trait in [`crate::Device`]; backends only move bytes.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{Result, StorageError};

/// Raw random-access byte storage for a single file.
pub trait ByteStore: Send {
    /// Current length of the file in bytes.
    fn len(&self) -> u64;

    /// Whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fills `buf` from `offset`. The full range must be inside the file.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes `data` at `offset`, extending the file (zero-filled) if the
    /// write begins past the current end.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()>;

    /// Shrinks or extends the file to exactly `len` bytes.
    fn truncate(&mut self, len: u64) -> Result<()>;

    /// Forces contents to durable storage (no-op for memory backends).
    fn sync(&mut self) -> Result<()>;
}

/// A file held entirely in a byte vector.
#[derive(Debug, Default)]
pub struct InMemoryBackend {
    data: Vec<u8>,
}

impl InMemoryBackend {
    /// Creates an empty in-memory file.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ByteStore for InMemoryBackend {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let end = offset + buf.len() as u64;
        if end > self.data.len() as u64 {
            return Err(StorageError::OutOfBounds { end, len: self.data.len() as u64 });
        }
        let start = offset as usize;
        buf.copy_from_slice(&self.data[start..start + buf.len()]);
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        let end = (offset as usize).checked_add(data.len()).expect("file size overflow");
        if end > self.data.len() {
            self.data.resize(end, 0);
        }
        self.data[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.data.resize(len as usize, 0);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// A file backed by a real operating-system file.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    len: u64,
}

impl FileBackend {
    /// Opens (creating if absent) the file at `path` for read/write access.
    pub fn open(path: &Path) -> Result<Self> {
        // Open-or-create without truncation: reopening must preserve contents.
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let len = file.metadata()?.len();
        Ok(FileBackend { file, len })
    }
}

impl ByteStore for FileBackend {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let end = offset + buf.len() as u64;
        if end > self.len {
            return Err(StorageError::OutOfBounds { end, len: self.len });
        }
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)?;
        self.len = self.len.max(offset + data.len() as u64);
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        self.len = len;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn ByteStore) {
        assert!(store.is_empty());
        store.write_at(0, b"hello world").unwrap();
        assert_eq!(store.len(), 11);

        let mut buf = [0u8; 5];
        store.read_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");

        // Write past EOF zero-fills the gap.
        store.write_at(20, b"x").unwrap();
        assert_eq!(store.len(), 21);
        let mut gap = [9u8; 4];
        store.read_at(12, &mut gap).unwrap();
        assert_eq!(gap, [0, 0, 0, 0]);

        // Overwrite in place.
        store.write_at(0, b"HELLO").unwrap();
        let mut head = [0u8; 5];
        store.read_at(0, &mut head).unwrap();
        assert_eq!(&head, b"HELLO");

        // Reads past EOF fail.
        let mut big = [0u8; 2];
        assert!(matches!(
            store.read_at(20, &mut big),
            Err(StorageError::OutOfBounds { end: 22, len: 21 })
        ));

        store.truncate(5).unwrap();
        assert_eq!(store.len(), 5);
        store.truncate(8).unwrap();
        assert_eq!(store.len(), 8);
        store.sync().unwrap();
    }

    #[test]
    fn in_memory_backend_basic_ops() {
        exercise(&mut InMemoryBackend::new());
    }

    #[test]
    fn file_backend_basic_ops() {
        let dir = std::env::temp_dir().join(format!("poir-backend-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dat");
        exercise(&mut FileBackend::open(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("poir-backend2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.dat");
        {
            let mut f = FileBackend::open(&path).unwrap();
            f.write_at(0, b"durable").unwrap();
            f.sync().unwrap();
        }
        {
            let mut f = FileBackend::open(&path).unwrap();
            assert_eq!(f.len(), 7);
            let mut buf = [0u8; 7];
            f.read_at(0, &mut buf).unwrap();
            assert_eq!(&buf, b"durable");
        }
        std::fs::remove_file(&path).unwrap();
    }
}

//! Property tests: the simulated device must behave like a plain byte
//! vector regardless of block size, cache capacity, or operation order, and
//! its counters must obey basic accounting invariants.

use proptest::prelude::*;

use poir_storage::{CostModel, Device, DeviceConfig};

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u16, data: Vec<u8> },
    Read { offset: u16, len: u8 },
    Truncate { len: u16 },
    Chill,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..2048, proptest::collection::vec(any::<u8>(), 0..128))
            .prop_map(|(offset, data)| Op::Write { offset, data }),
        (0u16..2048, any::<u8>()).prop_map(|(offset, len)| Op::Read { offset, len }),
        (0u16..2048).prop_map(|len| Op::Truncate { len }),
        Just(Op::Chill),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn device_matches_vec_model(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        block_size in 1usize..64,
        cache_blocks in 0usize..16,
    ) {
        let dev = Device::new(DeviceConfig {
            block_size,
            os_cache_blocks: cache_blocks,
            cost_model: CostModel::free(),
        });
        let f = dev.create_file();
        let mut model: Vec<u8> = Vec::new();

        for op in ops {
            match op {
                Op::Write { offset, data } => {
                    f.write(offset as u64, &data).unwrap();
                    let end = offset as usize + data.len();
                    if end > model.len() {
                        model.resize(end, 0);
                    }
                    model[offset as usize..end].copy_from_slice(&data);
                }
                Op::Read { offset, len } => {
                    let end = offset as usize + len as usize;
                    let got = f.read(offset as u64, len as usize);
                    if end <= model.len() {
                        prop_assert_eq!(got.unwrap(), &model[offset as usize..end]);
                    } else {
                        prop_assert!(got.is_err(), "read past EOF must fail");
                    }
                }
                Op::Truncate { len } => {
                    f.truncate(len as u64).unwrap();
                    model.resize(len as usize, 0);
                }
                Op::Chill => dev.chill(),
            }
            prop_assert_eq!(f.len().unwrap(), model.len() as u64);
        }
    }

    #[test]
    fn io_inputs_never_exceed_blocks_touched(
        reads in proptest::collection::vec((0u16..512, 1u8..255), 1..40),
        cache_blocks in 0usize..8,
    ) {
        let dev = Device::new(DeviceConfig {
            block_size: 32,
            os_cache_blocks: cache_blocks,
            cost_model: CostModel::free(),
        });
        let f = dev.create_file();
        f.write(0, &vec![0xAB; 1024]).unwrap();
        dev.chill();

        let mut blocks_touched = 0u64;
        let before = dev.stats().snapshot();
        for (offset, len) in reads {
            let offset = (offset as u64) % 700;
            let len = (len as usize).min(1024 - offset as usize);
            if len == 0 { continue; }
            f.read(offset, len).unwrap();
            let first = offset / 32;
            let last = (offset + len as u64 - 1) / 32;
            blocks_touched += last - first + 1;
        }
        let d = dev.stats().snapshot().since(&before);
        // Every disk input corresponds to a touched block, and with a zero
        // cache every touched block is a disk input.
        prop_assert!(d.io_inputs <= blocks_touched);
        if cache_blocks == 0 {
            prop_assert_eq!(d.io_inputs, blocks_touched);
        }
    }

    #[test]
    fn bytes_read_equals_requested(
        lens in proptest::collection::vec(0usize..100, 1..30),
    ) {
        let dev = Device::with_defaults();
        let f = dev.create_file();
        f.write(0, &[1u8; 128]).unwrap();
        let before = dev.stats().snapshot();
        let mut expected = 0u64;
        for len in &lens {
            let len = *len % 128;
            f.read(0, len).unwrap();
            expected += len as u64;
        }
        let d = dev.stats().snapshot().since(&before);
        prop_assert_eq!(d.bytes_read, expected);
        prop_assert_eq!(d.file_accesses, lens.len() as u64);
    }
}

//! The structured trace log must be a faithful, bounded record of engine
//! activity: timestamps never underflow, per-thread slices are ordered,
//! snapshot diffs saturate instead of wrapping, and a traced engine run
//! produces the slices the exporters promise (device reads, query spans,
//! lock waits, one track per worker thread).

use std::sync::Arc;

use proptest::prelude::*;

use poir::collections::{self, generate_queries, SyntheticCollection};
use poir::core::{BackendKind, Engine, ExecMode, TelemetryOptions};
use poir::inquery::{Index, IndexBuilder, StopWords};
use poir::storage::{CostModel, Device, DeviceConfig};
use poir::telemetry::trace::NO_POOL;
use poir::telemetry::{HistogramSnapshot, TelemetrySnapshot, TraceOp, Tracer, HISTOGRAM_BUCKETS};

// --- snapshot diff saturation (counter wrap / reset) ---------------------

#[test]
fn histogram_since_saturates_when_earlier_is_ahead() {
    // A stats reset leaves "earlier" with larger values than "later".
    // The diff must clamp to zero, never wrap to ~u64::MAX.
    let mut earlier = HistogramSnapshot::default();
    earlier.buckets[3] = 100;
    earlier.buckets[HISTOGRAM_BUCKETS - 1] = u64::MAX;
    earlier.count = 101;
    earlier.sum_micros = u64::MAX;
    let mut later = HistogramSnapshot::default();
    later.buckets[3] = 7;
    later.count = 7;
    later.sum_micros = 40;
    let diff = later.since(&earlier);
    assert_eq!(diff.buckets, [0u64; HISTOGRAM_BUCKETS]);
    assert_eq!(diff.count, 0);
    assert_eq!(diff.sum_micros, 0);
    // The sane direction still subtracts.
    let fwd = earlier.since(&later);
    assert_eq!(fwd.buckets[3], 93);
    assert_eq!(fwd.count, 94);
}

#[test]
fn telemetry_snapshot_since_saturates_componentwise() {
    let mut earlier = TelemetrySnapshot::default();
    let mut later = TelemetrySnapshot::default();
    // Mixed directions: some counters moved forward, some "backward"
    // (as after a reset); each component saturates independently.
    earlier.events[0] = 50;
    later.events[0] = 10; // backward: clamps to 0
    earlier.events[1] = 10;
    later.events[1] = 50; // forward: 40
    earlier.pools[2][0] = u64::MAX;
    later.pools[2][0] = 5; // backward at the extreme: clamps to 0
    earlier.phases[1].count = 9;
    later.phases[1].count = 3;
    let diff = later.since(&earlier);
    assert_eq!(diff.events[0], 0);
    assert_eq!(diff.events[1], 40);
    assert_eq!(diff.pools[2][0], 0);
    assert_eq!(diff.phases[1].count, 0);
}

// --- trace-record structural properties ----------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever durations are recorded — including durations far larger
    /// than the tracer's lifetime, which would drive `start = now - dur`
    /// negative — every record's timestamp saturates instead of
    /// underflowing and the emitted sequence is timestamp-ordered per
    /// thread.
    #[test]
    fn recorded_slices_are_ordered_and_never_underflow(
        ops in proptest::collection::vec(
            (0usize..11, any::<u64>(), 0u64..1_000_000_000_000, any::<u64>()),
            1..200,
        )
    ) {
        let tracer = Tracer::new(4096);
        for (op_idx, object, dur, bytes) in &ops {
            tracer.record(TraceOp::ALL[*op_idx], *object, NO_POOL, *bytes, *dur);
        }
        let records = tracer.records();
        prop_assert_eq!(records.len() as u64 + tracer.dropped(), ops.len() as u64);
        // Single-threaded caller: one thread tag, globally ordered.
        for pair in records.windows(2) {
            prop_assert!(pair[0].ts_micros <= pair[1].ts_micros, "slices out of order");
        }
        for r in &records {
            // ts = now - dur saturated at zero; a huge duration must not
            // wrap the start time past "now".
            prop_assert!(
                r.ts_micros.saturating_add(r.dur_micros) >= r.dur_micros,
                "timestamp underflowed"
            );
        }
    }
}

#[test]
fn ring_buffer_drops_oldest_under_pressure_without_losing_count() {
    let tracer = Tracer::new(64);
    for i in 0..10_000u64 {
        tracer.record(TraceOp::DeviceRead, i, NO_POOL, 1, 0);
    }
    let records = tracer.records();
    assert!(!records.is_empty());
    assert!(records.len() <= 10_000);
    assert_eq!(records.len() as u64 + tracer.dropped(), 10_000);
    // The survivors are the most recent writes.
    assert!(records.iter().any(|r| r.object >= 9_000));
}

// --- end-to-end: traced engine runs --------------------------------------

fn cacm_fixture() -> (Index, Vec<String>) {
    let paper = collections::cacm();
    let scaled = paper.clone().scale(0.05);
    let collection = SyntheticCollection::new(scaled.spec.clone());
    let mut builder = IndexBuilder::new(StopWords::default());
    for doc in collection.documents() {
        builder.add_document(&doc.name, &doc.text);
    }
    let index = builder.finish();
    let queries =
        generate_queries(&collection, &paper.query_sets[0]).into_iter().map(|q| q.text).collect();
    (index, queries)
}

fn tracing_engine(index: &Index, backend: BackendKind) -> Engine {
    let device = Device::new(DeviceConfig {
        block_size: 8192,
        os_cache_blocks: 128,
        cost_model: CostModel::default(),
    });
    Engine::builder(&device)
        .backend(backend)
        .telemetry(TelemetryOptions::tracing(1 << 20))
        .build(index.clone())
        .unwrap()
}

fn count_op(tracer: &Tracer, op: TraceOp) -> usize {
    tracer.records().iter().filter(|r| r.op == op).count()
}

#[test]
fn serial_run_traces_every_device_read_and_query() {
    let (index, queries) = cacm_fixture();
    let mut engine = tracing_engine(&index, BackendKind::MnemeCache);
    let (report, _) = engine.run_query_set_mode(&queries, 20, ExecMode::Serial).unwrap();
    let tracer = engine.tracer().expect("tracing engine has a tracer").clone();
    assert_eq!(tracer.dropped(), 0, "capacity must hold the whole run");
    // One slice per read system call against the device.
    assert!(report.io.file_accesses > 0);
    assert_eq!(count_op(&tracer, TraceOp::DeviceRead) as u64, report.io.file_accesses);
    // One Query slice per query, each with its phase children.
    assert_eq!(count_op(&tracer, TraceOp::Query), queries.len());
    assert!(count_op(&tracer, TraceOp::QueryPhase) >= queries.len());
    // The cached Mneme path exercises buffers and the object table.
    assert!(count_op(&tracer, TraceOp::PoolFetch) > 0);
    assert!(count_op(&tracer, TraceOp::HashProbe) > 0);
    assert!(count_op(&tracer, TraceOp::LockWait) > 0, "read path records lock acquisitions");

    // Exporters agree with the record list.
    let chrome = tracer.chrome_trace_json();
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"device_read\""));
    assert!(chrome.contains("\"ph\": \"X\""));
    let jsonl = tracer.access_log_jsonl();
    assert_eq!(jsonl.lines().count(), tracer.len());
    assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));

    // Residency report sees the same admissions the trace recorded.
    let residency = tracer.residency_report(5);
    assert!(!residency.pools.is_empty());
    assert!(residency.pools.iter().any(|p| p.refs > 0));
    assert!(!residency.hottest.is_empty());
}

#[test]
fn btree_backend_traces_descents() {
    let (index, queries) = cacm_fixture();
    let mut engine = tracing_engine(&index, BackendKind::BTree);
    engine.run_query_set_mode(&queries, 20, ExecMode::Serial).unwrap();
    let tracer = engine.tracer().unwrap().clone();
    assert!(count_op(&tracer, TraceOp::BTreeDescent) > 0);
    assert!(count_op(&tracer, TraceOp::PoolFetch) > 0, "record fetches traced");
}

#[test]
fn parallel_run_produces_one_track_per_worker_with_lock_waits() {
    let (index, queries) = cacm_fixture();
    let mut engine = tracing_engine(&index, BackendKind::MnemeCache);
    let parallel = engine.run_query_set_parallel(&queries, 20, 2).unwrap();
    assert_eq!(parallel.rankings.len(), queries.len());
    let tracer = engine.tracer().unwrap().clone();
    let records = tracer.records();

    let threads: std::collections::BTreeSet<u32> = records.iter().map(|r| r.thread).collect();
    assert!(threads.len() >= 2, "expected >=2 worker tracks, saw {threads:?}");
    assert!(records.iter().any(|r| r.op == TraceOp::LockWait), "lock waits on the shared path");
    // Query slices from both workers, tagged with real query indices.
    let tagged: std::collections::BTreeSet<u32> =
        records.iter().filter(|r| r.op == TraceOp::Query).map(|r| r.object as u32).collect();
    assert_eq!(tagged.len(), queries.len(), "every query traced exactly once");
    // Per-thread timestamp ordering survives the multi-shard merge.
    for &t in &threads {
        let ts: Vec<u64> = records.iter().filter(|r| r.thread == t).map(|r| r.ts_micros).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "thread {t} slices out of order");
    }
    // Both exporters carry both tracks.
    let chrome = tracer.chrome_trace_json();
    assert!(chrome.contains("\"lock_wait\""));
    let _ = Arc::new(tracer); // exporters take &self; tracer is shareable
}

//! Cross-mode equivalence: serial, batched-prefetch, and parallel query
//! execution must produce byte-identical rankings, and the coalesced batch
//! path must not cost more file accesses per record lookup than the serial
//! Mneme path.

use poir::collections::{self, generate_queries, SyntheticCollection};
use poir::core::{BackendKind, Engine, ExecMode};
use poir::inquery::{IndexBuilder, StopWords};
use poir::storage::{CostModel, Device, DeviceConfig};

fn device() -> std::sync::Arc<Device> {
    Device::new(DeviceConfig {
        block_size: 8192,
        os_cache_blocks: 256,
        cost_model: CostModel::default(),
    })
}

fn cacm_fixture() -> (poir::inquery::Index, Vec<String>) {
    let paper = collections::cacm();
    let scaled = paper.clone().scale(0.1);
    let collection = SyntheticCollection::new(scaled.spec.clone());
    let mut builder = IndexBuilder::new(StopWords::default());
    for doc in collection.documents() {
        builder.add_document(&doc.name, &doc.text);
    }
    let index = builder.finish();
    let queries =
        generate_queries(&collection, &paper.query_sets[0]).into_iter().map(|q| q.text).collect();
    (index, queries)
}

fn fresh_engine(index: &poir::inquery::Index) -> Engine {
    Engine::builder(&device()).backend(BackendKind::MnemeCache).build(index.clone()).unwrap()
}

/// Rankings as exactly comparable tuples (score bit patterns included).
fn keyed(rankings: &[Vec<poir::core::RankedResult>]) -> Vec<Vec<(u32, String, u64)>> {
    rankings
        .iter()
        .map(|q| q.iter().map(|r| (r.doc.0, r.name.clone(), r.score.to_bits())).collect())
        .collect()
}

#[test]
fn all_three_modes_rank_identically() {
    let (index, queries) = cacm_fixture();

    let mut serial_engine = fresh_engine(&index);
    let (serial_report, serial_rankings) =
        serial_engine.run_query_set_mode(&queries, 10, ExecMode::Serial).unwrap();

    let mut batched_engine = fresh_engine(&index);
    let (batched_report, batched_rankings) =
        batched_engine.run_query_set_mode(&queries, 10, ExecMode::BatchedPrefetch).unwrap();

    let mut parallel_engine = fresh_engine(&index);
    let parallel = parallel_engine.run_query_set_parallel(&queries, 10, 4).unwrap();

    assert!(!serial_rankings.is_empty());
    assert!(serial_rankings.iter().any(|r| !r.is_empty()), "queries must match documents");
    assert_eq!(
        keyed(&serial_rankings),
        keyed(&batched_rankings),
        "batched prefetch changed a ranking"
    );
    assert_eq!(
        keyed(&serial_rankings),
        keyed(&parallel.rankings),
        "parallel execution changed a ranking"
    );

    // Identical work: every mode performed the same record lookups.
    assert_eq!(serial_report.record_lookups, batched_report.record_lookups);
    assert_eq!(serial_report.record_lookups, parallel.report.record_lookups);
}

#[test]
fn batched_prefetch_does_not_increase_accesses_per_lookup() {
    let (index, queries) = cacm_fixture();

    let mut serial_engine = fresh_engine(&index);
    let (serial_report, _) =
        serial_engine.run_query_set_mode(&queries, 10, ExecMode::Serial).unwrap();

    let mut batched_engine = fresh_engine(&index);
    let (batched_report, _) =
        batched_engine.run_query_set_mode(&queries, 10, ExecMode::BatchedPrefetch).unwrap();

    assert!(serial_report.record_lookups > 0);
    assert!(
        batched_report.accesses_per_lookup() <= serial_report.accesses_per_lookup(),
        "coalesced batch I/O must not raise the A statistic: batched {} > serial {}",
        batched_report.accesses_per_lookup(),
        serial_report.accesses_per_lookup()
    );
    // A query's scattered terms rarely sit in adjacent segments, so the
    // batched run may only tie on accesses — but it must never read more.
    assert!(
        batched_report.io.file_accesses <= serial_report.io.file_accesses,
        "batched run issued more read system calls ({} vs {})",
        batched_report.io.file_accesses,
        serial_report.io.file_accesses
    );
    assert!(
        batched_report.io.io_inputs <= serial_report.io.io_inputs,
        "batched run transferred more blocks ({} vs {})",
        batched_report.io.io_inputs,
        serial_report.io.io_inputs
    );
}

#[test]
fn store_level_batch_fetch_strictly_coalesces() {
    use poir::core::{MnemeInvertedFile, MnemeOptions};
    use poir::inquery::InvertedFileStore;

    let (index, _) = cacm_fixture();
    let build_store = |dev: &std::sync::Arc<Device>| {
        let mut dict = index.dictionary.clone();
        let mut store = MnemeInvertedFile::build(
            dev.create_file(),
            MnemeOptions::default(),
            &index.records,
            &mut dict,
        )
        .unwrap();
        store.attach_buffers(poir::core::paper_heuristic(store.largest_record(), 8192)).unwrap();
        let refs: Vec<u64> = index.records.iter().map(|(t, _)| dict.entry(*t).store_ref).collect();
        (store, refs)
    };

    // Serial: fetch every record one at a time on a cold OS cache.
    let dev = device();
    let (mut serial_store, refs) = build_store(&dev);
    dev.chill();
    let before = dev.stats().snapshot();
    for &r in &refs {
        serial_store.fetch(r).unwrap();
    }
    let serial = dev.stats().snapshot().since(&before);

    // Batched: one fetch_batch over the same references.
    let dev = device();
    let (mut batch_store, refs2) = build_store(&dev);
    assert_eq!(refs, refs2);
    dev.chill();
    let before = dev.stats().snapshot();
    let results = batch_store.fetch_batch(&refs2);
    let batched = dev.stats().snapshot().since(&before);

    for (r, (_, bytes)) in results.iter().zip(&index.records) {
        assert_eq!(r.as_ref().unwrap(), bytes);
    }
    assert_eq!(batch_store.record_lookups(), refs.len() as u64);
    // Records were created back-to-back, so their segments are physically
    // adjacent and whole runs collapse into single gathered reads.
    assert!(
        batched.file_accesses < serial.file_accesses,
        "batch fetch should strictly coalesce ({} vs {} accesses)",
        batched.file_accesses,
        serial.file_accesses
    );
}

#[test]
fn parallel_execution_rejects_the_btree_backend() {
    let (index, queries) = cacm_fixture();
    let mut engine = Engine::builder(&device()).backend(BackendKind::BTree).build(index).unwrap();
    assert!(engine.run_query_set_parallel(&queries, 10, 2).is_err());
}

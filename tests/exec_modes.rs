//! Cross-mode equivalence: serial, batched-prefetch, and parallel query
//! execution must produce byte-identical rankings, and the coalesced batch
//! path must not cost more file accesses per record lookup than the serial
//! Mneme path.

use poir::collections::{self, generate_queries, SyntheticCollection};
use poir::core::{BackendKind, Engine, ExecMode};
use poir::inquery::{IndexBuilder, StopWords};
use poir::storage::{CostModel, Device, DeviceConfig};

fn device() -> std::sync::Arc<Device> {
    Device::new(DeviceConfig {
        block_size: 8192,
        os_cache_blocks: 256,
        cost_model: CostModel::default(),
    })
}

fn cacm_fixture() -> (poir::inquery::Index, Vec<String>) {
    let paper = collections::cacm();
    let scaled = paper.clone().scale(0.1);
    let collection = SyntheticCollection::new(scaled.spec.clone());
    let mut builder = IndexBuilder::new(StopWords::default());
    for doc in collection.documents() {
        builder.add_document(&doc.name, &doc.text);
    }
    let index = builder.finish();
    let queries =
        generate_queries(&collection, &paper.query_sets[0]).into_iter().map(|q| q.text).collect();
    (index, queries)
}

fn fresh_engine(index: &poir::inquery::Index) -> Engine {
    Engine::builder(&device()).backend(BackendKind::MnemeCache).build(index.clone()).unwrap()
}

/// Rankings as exactly comparable tuples (score bit patterns included).
fn keyed(rankings: &[Vec<poir::core::RankedResult>]) -> Vec<Vec<(u32, String, u64)>> {
    rankings
        .iter()
        .map(|q| q.iter().map(|r| (r.doc.0, r.name.clone(), r.score.to_bits())).collect())
        .collect()
}

#[test]
fn all_three_modes_rank_identically() {
    let (index, queries) = cacm_fixture();

    let mut serial_engine = fresh_engine(&index);
    let (serial_report, serial_rankings) =
        serial_engine.run_query_set_mode(&queries, 10, ExecMode::Serial).unwrap();

    let mut batched_engine = fresh_engine(&index);
    let (batched_report, batched_rankings) =
        batched_engine.run_query_set_mode(&queries, 10, ExecMode::BatchedPrefetch).unwrap();

    let mut parallel_engine = fresh_engine(&index);
    let parallel = parallel_engine.run_query_set_parallel(&queries, 10, 4).unwrap();

    assert!(!serial_rankings.is_empty());
    assert!(serial_rankings.iter().any(|r| !r.is_empty()), "queries must match documents");
    assert_eq!(
        keyed(&serial_rankings),
        keyed(&batched_rankings),
        "batched prefetch changed a ranking"
    );
    assert_eq!(
        keyed(&serial_rankings),
        keyed(&parallel.rankings),
        "parallel execution changed a ranking"
    );

    // Identical work: every mode performed the same record lookups.
    assert_eq!(serial_report.record_lookups, batched_report.record_lookups);
    assert_eq!(serial_report.record_lookups, parallel.report.record_lookups);
}

#[test]
fn batched_prefetch_does_not_increase_accesses_per_lookup() {
    let (index, queries) = cacm_fixture();

    let mut serial_engine = fresh_engine(&index);
    let (serial_report, _) =
        serial_engine.run_query_set_mode(&queries, 10, ExecMode::Serial).unwrap();

    let mut batched_engine = fresh_engine(&index);
    let (batched_report, _) =
        batched_engine.run_query_set_mode(&queries, 10, ExecMode::BatchedPrefetch).unwrap();

    assert!(serial_report.record_lookups > 0);
    assert!(
        batched_report.accesses_per_lookup() <= serial_report.accesses_per_lookup(),
        "coalesced batch I/O must not raise the A statistic: batched {} > serial {}",
        batched_report.accesses_per_lookup(),
        serial_report.accesses_per_lookup()
    );
    // A query's scattered terms rarely sit in adjacent segments, so the
    // batched run may only tie on accesses — but it must never read more.
    assert!(
        batched_report.io.file_accesses <= serial_report.io.file_accesses,
        "batched run issued more read system calls ({} vs {})",
        batched_report.io.file_accesses,
        serial_report.io.file_accesses
    );
    assert!(
        batched_report.io.io_inputs <= serial_report.io.io_inputs,
        "batched run transferred more blocks ({} vs {})",
        batched_report.io.io_inputs,
        serial_report.io.io_inputs
    );
}

#[test]
fn store_level_batch_fetch_strictly_coalesces() {
    use poir::core::{MnemeInvertedFile, MnemeOptions};
    use poir::inquery::InvertedFileStore;

    let (index, _) = cacm_fixture();
    let build_store = |dev: &std::sync::Arc<Device>| {
        let mut dict = index.dictionary.clone();
        let mut store = MnemeInvertedFile::build(
            dev.create_file(),
            MnemeOptions::default(),
            &index.records,
            &mut dict,
        )
        .unwrap();
        store.attach_buffers(poir::core::paper_heuristic(store.largest_record(), 8192)).unwrap();
        let refs: Vec<u64> = index.records.iter().map(|(t, _)| dict.entry(*t).store_ref).collect();
        (store, refs)
    };

    // Serial: fetch every record one at a time on a cold OS cache.
    let dev = device();
    let (mut serial_store, refs) = build_store(&dev);
    dev.chill();
    let before = dev.stats().snapshot();
    for &r in &refs {
        serial_store.fetch(r).unwrap();
    }
    let serial = dev.stats().snapshot().since(&before);

    // Batched: one fetch_batch over the same references.
    let dev = device();
    let (mut batch_store, refs2) = build_store(&dev);
    assert_eq!(refs, refs2);
    dev.chill();
    let before = dev.stats().snapshot();
    let results = batch_store.fetch_batch(&refs2);
    let batched = dev.stats().snapshot().since(&before);

    for (r, (_, bytes)) in results.iter().zip(&index.records) {
        assert_eq!(r.as_ref().unwrap(), bytes);
    }
    assert_eq!(batch_store.record_lookups(), refs.len() as u64);
    // Records were created back-to-back, so their segments are physically
    // adjacent and whole runs collapse into single gathered reads.
    assert!(
        batched.file_accesses < serial.file_accesses,
        "batch fetch should strictly coalesce ({} vs {} accesses)",
        batched.file_accesses,
        serial.file_accesses
    );
}

#[test]
fn pruned_daat_matches_daat_and_taat_on_every_backend() {
    let (index, queries) = cacm_fixture();
    for backend in BackendKind::all() {
        let build = || Engine::builder(&device()).backend(backend).build(index.clone()).unwrap();

        let (_, taat) = build().run_query_set_mode(&queries, 10, ExecMode::Serial).unwrap();
        let (_, daat) = build().run_query_set_mode(&queries, 10, ExecMode::Daat).unwrap();
        let (_, pruned) = build().run_query_set_mode(&queries, 10, ExecMode::DaatPruned).unwrap();

        // Pruning must be invisible in the results: bit-identical scores.
        assert_eq!(
            keyed(&daat),
            keyed(&pruned),
            "{}: pruned DAAT changed a ranking",
            backend.label()
        );
        // And document-at-a-time agrees with term-at-a-time up to
        // floating-point association order.
        assert_eq!(taat.len(), daat.len());
        for (qi, (a, b)) in taat.iter().zip(daat.iter()).enumerate() {
            assert_eq!(a.len(), b.len(), "{}: query {qi}", backend.label());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.doc, y.doc, "{}: query {qi}", backend.label());
                assert!(
                    (x.score - y.score).abs() < 1e-9,
                    "{}: query {qi}: {} vs {}",
                    backend.label(),
                    x.score,
                    y.score
                );
            }
        }
    }
}

/// A collection with one very long inverted record ("common", every
/// document) and a short high-signal one ("needle", clustered in the first
/// tenth of the collection). With `k <= needle's df`, max-score pruning
/// stops consuming the common list early and probes it by seeking, so the
/// huge-pool range-read path fetches only a prefix plus a handful of
/// posting blocks instead of the whole multi-segment record.
fn long_record_index() -> poir::inquery::Index {
    let mut b = IndexBuilder::new(StopWords::none());
    for i in 0..30_000u32 {
        let mut text = "common ".repeat((i % 7 + 1) as usize);
        if i % 300 == 0 && i < 3_000 {
            text.push_str("needle");
        }
        b.add_document(&format!("D{i}"), &text);
    }
    b.finish()
}

#[test]
fn pruned_daat_range_reads_reduce_io_on_long_records() {
    use poir::core::TelemetryOptions;
    use poir::telemetry::Event;

    let index = long_record_index();
    let queries = ["needle common"];
    let run = |mode: ExecMode| {
        let mut engine = Engine::builder(&device())
            .backend(BackendKind::MnemeNoCache)
            .telemetry(TelemetryOptions::full())
            .build(index.clone())
            .unwrap();
        engine.run_query_set_mode(&queries, 5, mode).unwrap()
    };

    let (daat_report, daat_rankings) = run(ExecMode::Daat);
    let (pruned_report, pruned_rankings) = run(ExecMode::DaatPruned);

    assert_eq!(pruned_rankings[0].len(), 5);
    assert_eq!(keyed(&daat_rankings), keyed(&pruned_rankings));

    let metrics = pruned_report.metrics.as_ref().unwrap();
    assert!(metrics.delta.get(Event::PostingsSkipped) > 0, "no postings skipped");
    assert!(metrics.delta.get(Event::BlocksSkipped) > 0, "no blocks skipped");
    assert!(metrics.delta.get(Event::RangeRead) > 0, "huge-pool range reads not used");
    // Unpruned DAAT fetches whole records (and records no pruning stats).
    let daat_metrics = daat_report.metrics.as_ref().unwrap();
    assert_eq!(daat_metrics.delta.get(Event::RangeRead), 0);
    // "common" has df 30 000; pruning must not have consumed it all.
    assert!(
        metrics.delta.get(Event::PostingsDecoded) < 30_000,
        "pruning decoded the whole long list: {}",
        metrics.delta.get(Event::PostingsDecoded)
    );
    // The point of the range-read path: I (I/O inputs) drops because only
    // the touched physical segments of the long record are read.
    assert!(
        pruned_report.io.io_inputs < daat_report.io.io_inputs,
        "range reads did not reduce I/O inputs: pruned {} vs daat {}",
        pruned_report.io.io_inputs,
        daat_report.io.io_inputs
    );
    assert!(pruned_report.io.bytes_read < daat_report.io.bytes_read);
}

#[test]
fn parallel_execution_rejects_the_btree_backend() {
    let (index, queries) = cacm_fixture();
    let mut engine = Engine::builder(&device()).backend(BackendKind::BTree).build(index).unwrap();
    assert!(engine.run_query_set_parallel(&queries, 10, 2).is_err());
}

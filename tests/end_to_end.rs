//! End-to-end integration: synthetic collection → index → three storage
//! configurations → identical retrieval, distinct I/O profiles.

use poir::collections::{self, generate_queries, judgments_for, SyntheticCollection};
use poir::core::{BackendKind, Engine};
use poir::inquery::{IndexBuilder, ScoredDoc, StopWords};
use poir::storage::{CostModel, Device, DeviceConfig};

fn device() -> std::sync::Arc<Device> {
    Device::new(DeviceConfig {
        block_size: 8192,
        os_cache_blocks: 256,
        cost_model: CostModel::default(),
    })
}

fn build(
    paper: &collections::PaperCollection,
    scale: f64,
) -> (SyntheticCollection, poir::inquery::Index) {
    let scaled = paper.clone().scale(scale);
    let collection = SyntheticCollection::new(scaled.spec.clone());
    let mut builder = IndexBuilder::new(StopWords::default());
    for doc in collection.documents() {
        builder.add_document(&doc.name, &doc.text);
    }
    let index = builder.finish();
    (collection, index)
}

#[test]
fn full_pipeline_cacm_like() {
    let paper = collections::cacm();
    let (collection, index) = build(&paper, 0.1);
    let queries = generate_queries(&collection, &paper.query_sets[0]);
    let texts: Vec<&str> = queries.iter().map(|q| q.text.as_str()).collect();

    let mut rankings: Vec<Vec<(u32, f64)>> = Vec::new();
    let mut reports = Vec::new();
    for backend in BackendKind::all() {
        let dev = device();
        let mut engine = Engine::builder(&dev).backend(backend).build(index.clone()).unwrap();
        // Rankings per query.
        let mut per_backend = Vec::new();
        for q in &texts {
            for r in engine.query(q, 10).unwrap() {
                per_backend.push((r.doc.0, (r.score * 1e12).round()));
            }
        }
        rankings.push(per_backend.into_iter().collect());
        reports.push(engine.run_query_set(&texts, 10).unwrap());
    }
    assert_eq!(rankings[0], rankings[1], "B-tree vs Mneme no-cache rankings");
    assert_eq!(rankings[1], rankings[2], "Mneme no-cache vs cached rankings");

    // The paper's qualitative results.
    let a = |i: usize| reports[i].accesses_per_lookup();
    assert!(a(0) > a(1), "B-tree A {} must exceed plain Mneme {}", a(0), a(1));
    assert!(a(1) > a(2), "plain Mneme A {} must exceed cached {}", a(1), a(2));
    assert!(
        reports[2].sys_io_time <= reports[1].sys_io_time,
        "caching must not increase simulated system + I/O time"
    );
}

#[test]
fn relevant_documents_are_retrieved() {
    let paper = collections::legal();
    let (collection, index) = build(&paper, 0.05);
    let queries = generate_queries(&collection, &paper.query_sets[0]);
    let dev = device();
    let mut engine = Engine::builder(&dev).backend(BackendKind::MnemeCache).build(index).unwrap();
    let mut aps = Vec::new();
    for q in &queries {
        let ranked = engine.query(&q.text, 50).unwrap();
        let scored: Vec<ScoredDoc> =
            ranked.iter().map(|r| ScoredDoc { doc: r.doc, score: r.score }).collect();
        aps.push(judgments_for(&collection, q).average_precision(&scored));
    }
    let map = poir::inquery::metrics::mean(&aps);
    assert!(map > 0.3, "topical queries must find their topics' documents (MAP {map})");
}

#[test]
fn record_size_distribution_matches_the_paper() {
    // "approximately 50% of the inverted lists are 12 bytes or less"
    let (_, index) = build(&collections::legal(), 0.1);
    let fraction = index.fraction_at_most(12);
    assert!((0.35..0.70).contains(&fraction), "small-record fraction {fraction} out of band");
    // And the small records are a negligible share of the file bytes
    // (Figure 1: "less than 1% of the total file size for the larger
    // collections and only 5% ... for the smallest").
    let small_bytes: u64 =
        index.records.iter().map(|(_, r)| r.len() as u64).filter(|&l| l <= 12).sum();
    let share = small_bytes as f64 / index.total_record_bytes() as f64;
    // At this 10% test scale the large lists are still growing, so the
    // bound is loose; the paper's ≤5% emerges at full scale (the
    // `reproduce` harness verifies it — see EXPERIMENTS.md).
    assert!(share < 0.25, "small records hold {share} of file bytes");
}

#[test]
fn dictionary_and_store_round_trip_through_bytes() {
    let (_, index) = build(&collections::cacm(), 0.05);
    let bytes = index.dictionary.to_bytes();
    let restored = poir::inquery::Dictionary::from_bytes(&bytes).unwrap();
    assert_eq!(restored.len(), index.dictionary.len());
    for (id, term, entry) in index.dictionary.iter().take(500) {
        assert_eq!(restored.lookup(term), Some(id));
        assert_eq!(restored.entry(id), entry);
    }
    let doc_bytes = index.documents.to_bytes();
    let docs = poir::inquery::DocTable::from_bytes(&doc_bytes).unwrap();
    assert_eq!(docs.len(), index.documents.len());
}

#[test]
fn chill_file_resets_are_observable() {
    let (_, index) = build(&collections::cacm(), 0.05);
    let dev = device();
    let mut engine = Engine::builder(&dev).backend(BackendKind::MnemeNoCache).build(index).unwrap();
    let queries = vec!["bani caba dani"; 3];
    let r1 = engine.run_query_set(&queries, 10).unwrap();
    let r2 = engine.run_query_set(&queries, 10).unwrap();
    // Each run starts from a chilled OS cache, so the disk-input counts of
    // identical runs match (the paper's repeatability procedure).
    assert_eq!(r1.io_inputs(), r2.io_inputs());
    assert_eq!(r1.kbytes_read(), r2.kbytes_read());
}

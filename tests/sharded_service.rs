//! Sharded query service: cross-shard equivalence, admission control,
//! deadlines, and telemetry aggregation.
//!
//! The load-bearing property is bit-identity — splitting the collection
//! into N shards, evaluating each with the global statistics, and merging
//! the per-shard top-k must reproduce the unsharded `DaatPruned` ranking
//! exactly (scores compared by bit pattern), on every storage backend.

use std::sync::Arc;
use std::time::Duration;

use poir::core::{
    BackendKind, CoreError, Engine, ExecMode, QueryRequest, QueryService, ServiceConfig, ShardSpec,
};
use poir::inquery::{Index, IndexBuilder, StopWords};
use poir::storage::{
    CostModel, Device, DeviceConfig, FaultKind, FaultOp, FaultPlan, FaultRule, FaultSchedule,
};
use poir::telemetry::{Event, TelemetryOptions};

fn build_index(num_docs: usize) -> Index {
    let mut b = IndexBuilder::new(StopWords::default());
    for d in 0..num_docs {
        let mut text = String::new();
        for t in 0..60 {
            let rank = (d * 31 + t * 17) % 211;
            text.push_str(&format!("w{rank} "));
            if (d + t) % 7 == 0 {
                text.push_str(&format!("rare{d} ", d = d % 37));
            }
        }
        if d % 5 == 0 {
            text.push_str("object store performance ");
        }
        b.add_document(&format!("DOC-{d:04}"), &text);
    }
    b.finish()
}

fn device() -> Arc<Device> {
    Device::new(DeviceConfig {
        block_size: 8192,
        os_cache_blocks: 128,
        cost_model: CostModel::default(),
    })
}

const BAG_QUERIES: &[&str] =
    &["w3 w17 w50", "w100 rare5", "#wsum(3 w7 1 w9 2 rare11)", "w1 w2 w3 w4 w5", "rare0 w200"];

/// A ranking as exactly comparable tuples (score bit patterns included).
fn keyed(hits: &[poir::core::RankedResult]) -> Vec<(u32, String, u64)> {
    hits.iter().map(|r| (r.doc.0, r.name.clone(), r.score.to_bits())).collect()
}

#[test]
fn sharded_topk_is_bit_identical_to_unsharded_on_all_backends() {
    let index = build_index(300);
    for backend in BackendKind::all() {
        let mut unsharded =
            Engine::builder(&device()).backend(backend).build(index.clone()).unwrap();
        let (_, reference) =
            unsharded.run_query_set_mode(BAG_QUERIES, 10, ExecMode::DaatPruned).unwrap();
        assert!(reference.iter().any(|r| !r.is_empty()), "queries must match documents");
        for shards in [1usize, 2, 4] {
            let mut sharded = Engine::builder(&device())
                .backend(backend)
                .exec_mode(ExecMode::DaatPruned)
                .sharding(ShardSpec::new(shards, shards))
                .build_sharded(index.clone())
                .unwrap();
            assert_eq!(sharded.num_shards(), shards);
            // Per-query execute path.
            for (qi, q) in BAG_QUERIES.iter().enumerate() {
                let resp = sharded.execute(&QueryRequest::new(*q, 10)).unwrap();
                assert_eq!(
                    keyed(&resp.hits),
                    keyed(&reference[qi]),
                    "{backend:?} N={shards} diverged on {q:?} (execute)"
                );
                assert_eq!(resp.shards.len(), shards);
            }
            // Batch path.
            let (_, rankings) = sharded.run_query_set(BAG_QUERIES, 10).unwrap();
            for (qi, ranking) in rankings.iter().enumerate() {
                assert_eq!(
                    keyed(ranking),
                    keyed(&reference[qi]),
                    "{backend:?} N={shards} diverged on query {qi} (batch)"
                );
            }
        }
    }
}

#[test]
fn sharded_engine_rejects_structured_queries_and_taat_modes() {
    let index = build_index(80);
    let mut sharded =
        Engine::builder(&device()).sharding(ShardSpec::new(2, 2)).build_sharded(index).unwrap();
    let err = sharded.execute(&QueryRequest::new("#and(w3 w17)", 5)).unwrap_err();
    assert!(matches!(err, CoreError::Unsupported(_)), "structured query must be typed-rejected");
    let err = sharded.execute(&QueryRequest::new("w3 w17", 5).mode(ExecMode::Serial)).unwrap_err();
    assert!(matches!(err, CoreError::Unsupported(_)), "TAAT mode must be typed-rejected");
}

#[test]
fn service_reproduces_sharded_rankings_and_reports_queue_wait() {
    let index = build_index(200);
    let mut sharded = Engine::builder(&device())
        .exec_mode(ExecMode::DaatPruned)
        .sharding(ShardSpec::new(4, 2))
        .build_sharded(index.clone())
        .unwrap();
    let mut reference = Vec::new();
    for q in BAG_QUERIES {
        reference.push(sharded.execute(&QueryRequest::new(*q, 10)).unwrap().hits);
    }
    let service_engine =
        Engine::builder(&device()).sharding(ShardSpec::new(4, 2)).build_sharded(index).unwrap();
    let service = QueryService::start(service_engine, 8).unwrap();
    for (qi, q) in BAG_QUERIES.iter().enumerate() {
        let resp = service.query(QueryRequest::new(*q, 10)).unwrap();
        assert_eq!(keyed(&resp.hits), keyed(&reference[qi]), "service diverged on {q:?}");
        assert_eq!(resp.shards.len(), 4);
    }
    // Structured queries stay typed errors through the queue too.
    assert!(matches!(
        service.query(QueryRequest::new("#and(w3 w17)", 5)),
        Err(CoreError::Unsupported(_))
    ));
    service.shutdown();
    assert!(matches!(
        service.try_submit(QueryRequest::new("w3", 5)),
        Err(CoreError::ServiceStopped)
    ));
}

#[test]
fn full_queue_rejects_with_overloaded_and_admitted_requests_complete() {
    let index = build_index(150);
    let engine = Engine::builder(&device())
        .telemetry(TelemetryOptions::counters_only())
        .sharding(ShardSpec::new(1, 1))
        .build_sharded(index)
        .unwrap();
    let service = QueryService::start(engine, 2).unwrap();
    assert_eq!(service.capacity(), 2);
    // One worker, capacity 2: a burst of non-blocking submissions must
    // overflow the queue faster than the worker drains it.
    let mut pending = Vec::new();
    let mut rejected = 0usize;
    for i in 0..200 {
        let q = BAG_QUERIES[i % BAG_QUERIES.len()];
        match service.try_submit(QueryRequest::new(q, 10)) {
            Ok(p) => pending.push(p),
            Err(CoreError::Overloaded { capacity }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(rejected > 0, "a 200-burst against a 2-slot queue must shed load");
    assert!(!pending.is_empty(), "some requests must be admitted");
    let admitted = pending.len();
    for p in pending {
        let resp = p.wait().expect("admitted request must complete");
        assert!(!resp.hits.is_empty());
    }
    // Counter bookkeeping: every submission was either enqueued or
    // rejected, and the shared recorder saw each exactly once.
    let snap = service.recorder().snapshot();
    assert_eq!(snap.get(Event::QueueEnqueued), admitted as u64);
    assert_eq!(snap.get(Event::QueueRejected), rejected as u64);
    assert_eq!(admitted + rejected, 200);
}

#[test]
fn deadline_between_shards_returns_partial_results() {
    let index = build_index(200);
    let mut sharded =
        Engine::builder(&device()).sharding(ShardSpec::new(2, 2)).build_sharded(index).unwrap();
    // "w0" appears throughout the collection, so shard 0 (the only shard
    // guaranteed to complete under a zero budget) has hits to return.
    let req = QueryRequest::new("w0 w1 w2", 10).deadline(Duration::ZERO);
    match sharded.execute(&req) {
        Err(CoreError::DeadlineExceeded { budget, elapsed, partial }) => {
            assert_eq!(budget, Duration::ZERO);
            assert!(elapsed > Duration::ZERO);
            assert!(!partial.is_empty(), "shard 0 always completes; partial must carry its hits");
            // Partial hits come only from shard 0's document range.
            let max_doc = partial.iter().map(|r| r.doc.0).max().unwrap();
            assert!(max_doc < 100, "partial hit {max_doc} outside shard 0's range");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn expired_deadline_at_dequeue_is_rejected_without_evaluation() {
    let index = build_index(100);
    let engine = Engine::builder(&device())
        .telemetry(TelemetryOptions::counters_only())
        .sharding(ShardSpec::new(2, 1))
        .build_sharded(index)
        .unwrap();
    let service = QueryService::start(engine, 4).unwrap();
    let err = service.query(QueryRequest::new("w3 w17", 10).deadline(Duration::ZERO)).unwrap_err();
    match err {
        CoreError::DeadlineExceeded { partial, .. } => {
            assert!(partial.is_empty(), "an expired request must be dropped before evaluation");
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    assert_eq!(service.recorder().snapshot().get(Event::QueueExpired), 1);
}

#[test]
fn concurrent_submit_and_shutdown_neither_deadlocks_nor_loses_admitted_work() {
    let index = build_index(120);
    let engine =
        Engine::builder(&device()).sharding(ShardSpec::new(2, 2)).build_sharded(index).unwrap();
    let service = QueryService::start(engine, 4).unwrap();
    std::thread::scope(|scope| {
        let submitters: Vec<_> = (0..4)
            .map(|t| {
                let service = &service;
                scope.spawn(move || {
                    let mut outcomes = (0usize, 0usize, 0usize); // ok, shed, stopped
                    for i in 0..50 {
                        let q = BAG_QUERIES[(t + i) % BAG_QUERIES.len()];
                        match service.try_submit(QueryRequest::new(q, 5)) {
                            Ok(p) => match p.wait() {
                                Ok(_) => outcomes.0 += 1,
                                Err(CoreError::ServiceStopped) => outcomes.2 += 1,
                                Err(e) => panic!("admitted request failed: {e}"),
                            },
                            Err(CoreError::Overloaded { .. }) => outcomes.1 += 1,
                            Err(CoreError::ServiceStopped) => outcomes.2 += 1,
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    }
                    outcomes
                })
            })
            .collect();
        // Shut down from two racing threads while submissions are in
        // flight: shutdown must be idempotent and admitted requests must
        // still resolve (drain-then-exit).
        let s1 = scope.spawn(|| service.shutdown());
        let s2 = scope.spawn(|| service.shutdown());
        s1.join().unwrap();
        s2.join().unwrap();
        let mut total_ok = 0;
        for s in submitters {
            let (ok, _shed, _stopped) = s.join().unwrap();
            total_ok += ok;
        }
        // At least the requests admitted before shutdown completed; the
        // exact split depends on the race, but nothing may hang or error
        // in an untyped way (the panics above).
        assert!(total_ok <= 4 * 50);
    });
    assert!(matches!(
        service.try_submit(QueryRequest::new("w3", 5)),
        Err(CoreError::ServiceStopped)
    ));
}

#[test]
fn service_stats_report_counters_and_attribution() {
    let index = build_index(200);
    let engine =
        Engine::builder(&device()).sharding(ShardSpec::new(2, 2)).build_sharded(index).unwrap();
    // A 1-microsecond slow threshold puts every request in the flight
    // recorder, so the observatory surfaces are all populated.
    let config = ServiceConfig {
        queue_capacity: 8,
        slow_threshold_micros: 1,
        slow_capacity: 8,
        ..ServiceConfig::default()
    };
    let service = QueryService::start_with(engine, config).unwrap();
    let rounds = 4;
    for i in 0..rounds * BAG_QUERIES.len() {
        let q = BAG_QUERIES[i % BAG_QUERIES.len()];
        service.query(QueryRequest::new(q, 10).id(i as u32)).unwrap();
    }
    let total = (rounds * BAG_QUERIES.len()) as u64;
    let stats = service.stats();
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.queue_capacity, 8);
    assert_eq!(stats.admitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.failed, 0);
    // Synchronous submission: nothing queued or running at snapshot time.
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 0);
    assert!(stats.uptime_secs > 0.0);
    assert!(stats.admitted_rate.s60 > 0.0, "recent completions show in the windowed rate");
    let latency = &stats.latency;
    assert_eq!(latency.count as u64, total);
    assert!(latency.p50_micros <= latency.p99_micros && latency.p99_micros <= latency.max_micros);
    // The tail attribution's components sum to the reported p99 exactly —
    // the breakdown IS the p99 request's, not an average of histograms.
    let attr = stats.attribution.as_ref().expect("attribution after completions");
    assert_eq!(attr.samples as u64, total);
    assert_eq!(attr.breakdown.total_micros(), attr.p99_micros);
    assert_eq!(
        attr.breakdown.queue_micros
            + attr.breakdown.eval_micros
            + attr.breakdown.merge_micros
            + attr.breakdown.other_micros,
        attr.p99_micros
    );
    assert!(attr.tail_count >= 1);
    // Flight recorder saw everything, retained up to capacity.
    assert_eq!(stats.slow_threshold_micros, 1);
    assert_eq!(stats.slow_observed, total);
    assert_eq!(stats.slow_retained, 8);
    assert_eq!(service.slow_queries().len(), 8);
    // Both export formats carry the registry.
    let json = stats.to_json();
    assert!(json.contains("\"p99_attribution\""));
    assert!(json.contains("\"metrics\""));
    let prom = stats.prometheus_text();
    assert!(prom.contains("# TYPE poir_service_completed counter"));
    assert!(prom.contains("poir_service_request_micros_bucket"));
    service.shutdown();
}

#[test]
fn query_id_joins_trace_and_slow_log() {
    let index = build_index(150);
    let engine = Engine::builder(&device())
        .telemetry(TelemetryOptions::tracing(4096))
        .sharding(ShardSpec::new(2, 2))
        .build_sharded(index)
        .unwrap();
    let config = ServiceConfig { slow_threshold_micros: 1, ..ServiceConfig::default() };
    let service = QueryService::start_with(engine, config).unwrap();
    let resp = service.query(QueryRequest::new("w3 w17 rare5", 10).id(777)).unwrap();
    assert_eq!(resp.breakdown.query_id, 777);
    // The slow-query record carries the caller's id and the trace slice
    // extracted for it — every record tagged with the same id, queue wait
    // included.
    let slow = service.slow_queries();
    let record = slow.iter().find(|r| r.query_id == 777).expect("slow log has the request");
    assert_eq!(record.breakdown.query_id, 777);
    assert!(!record.trace.is_empty(), "tracing was on; the slice must be attached");
    assert!(record.trace.iter().all(|r| r.query == 777));
    assert!(record.trace.iter().any(|r| r.op == poir::telemetry::TraceOp::QueueWait));
    assert!(record.trace.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    // The same slice is reachable straight from the tracer.
    let tracer = service.recorder().tracer().expect("tracing enabled").clone();
    let records = tracer.records_for_query(777);
    assert!(!records.is_empty());
    assert!(records.iter().all(|r| r.query == 777));
    // And the JSONL dump names the id.
    assert!(service.slow_queries_jsonl().contains("\"query_id\": 777"));
    service.shutdown();
}

#[test]
fn shard_storage_faults_degrade_to_partial_results_and_recover() {
    let index = build_index(200);
    let dev = device();
    let engine = Engine::builder(&dev)
        .backend(BackendKind::MnemeNoCache)
        .telemetry(TelemetryOptions::counters_only())
        .sharding(ShardSpec::new(2, 2))
        .build_sharded(index)
        .unwrap();
    // The service consumes the engine, so the fault target (shard 1's
    // store file) must be captured first.
    let faulty_store = engine.shard_store_handle(1).id();
    let service = QueryService::start(engine, 8).unwrap();
    // Reference rankings with healthy storage.
    let mut reference = Vec::new();
    for q in BAG_QUERIES {
        let resp = service.query(QueryRequest::new(*q, 10)).unwrap();
        assert!(resp.degraded.is_none(), "healthy storage must not degrade");
        reference.push(resp.hits);
    }

    // Every read against shard 1's store now fails with EIO; shard 0 is
    // untouched, so requests must degrade to its half of the collection
    // instead of failing outright.
    dev.install_fault_plan(
        FaultPlan::new().rule(
            FaultRule::new(FaultOp::Read, FaultKind::Eio, FaultSchedule::AfterOps { skip: 0 })
                .on_file(faulty_store),
        ),
    );
    let resp = service.query(QueryRequest::new("w3 w17 w50", 10)).unwrap();
    let degraded = resp.degraded.as_ref().expect("response must be marked degraded");
    assert_eq!(degraded.missing_shards, vec![1]);
    assert!(degraded.retries >= 1, "the retry budget is spent before the shard is dropped");
    assert!(!resp.hits.is_empty(), "shard 0 still answers");
    let max_doc = resp.hits.iter().map(|r| r.doc.0).max().unwrap();
    assert!(max_doc < 100, "hit {max_doc} outside shard 0's document range");
    assert!(dev.fault_stats().eio >= 1, "the injected faults actually fired");

    let stats = service.stats();
    assert!(stats.degraded >= 1);
    assert!(stats.shard_retries >= 1);
    assert_eq!(stats.worker_panics, 0);
    assert!(stats.shard_health[0].healthy, "shard 0 never failed");
    let sick = &stats.shard_health[1];
    assert!(!sick.healthy, "shard 1's latest evaluation failed");
    assert!(sick.failures >= 1 && sick.retries >= 1 && sick.consecutive_failures >= 1);
    let snap = service.recorder().snapshot();
    assert!(snap.get(Event::DegradedResponse) >= 1);
    assert!(snap.get(Event::ShardRetry) >= 1);

    // Fault clears: rankings return bit-identical and health recovers.
    dev.clear_fault_plan();
    for (qi, q) in BAG_QUERIES.iter().enumerate() {
        let resp = service.query(QueryRequest::new(*q, 10)).unwrap();
        assert!(resp.degraded.is_none());
        assert_eq!(keyed(&resp.hits), keyed(&reference[qi]), "post-recovery diverged on {q:?}");
    }
    assert!(service.stats().shard_health[1].healthy, "clean evaluation must reset health");
    service.shutdown();
}

#[test]
fn worker_panic_is_caught_counted_and_the_pool_survives() {
    let index = build_index(150);
    let dev = device();
    let engine = Engine::builder(&dev)
        .backend(BackendKind::MnemeNoCache)
        .sharding(ShardSpec::new(2, 2))
        .build_sharded(index)
        .unwrap();
    let store = engine.shard_store_handle(0).id();
    let service = QueryService::start(engine, 4).unwrap();
    // The next read against shard 0's store panics, exactly once. The
    // fault fires after the device lock is released, so only the worker's
    // stack unwinds — the store itself stays usable.
    dev.install_fault_plan(
        FaultPlan::new().rule(
            FaultRule::new(FaultOp::Read, FaultKind::Panic, FaultSchedule::Nth { n: 0 })
                .on_file(store)
                .max_fires(1),
        ),
    );
    match service.query(QueryRequest::new("w3 w17", 10)) {
        Err(CoreError::WorkerPanicked { message }) => {
            assert!(!message.is_empty(), "the panic payload is surfaced to the caller");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert_eq!(dev.fault_stats().panics, 1);
    let stats = service.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.failed, 1);
    // The worker caught the unwind and kept draining: the same pool
    // serves the next request in full.
    dev.clear_fault_plan();
    let resp = service.query(QueryRequest::new("w3 w17", 10)).unwrap();
    assert!(!resp.hits.is_empty());
    assert!(resp.degraded.is_none());
    service.shutdown();
}

#[test]
fn sharded_telemetry_aggregates_without_double_counting() {
    let index = build_index(200);
    let mut sharded = Engine::builder(&device())
        .telemetry(TelemetryOptions::counters_only())
        .sharding(ShardSpec::new(4, 4))
        .build_sharded(index)
        .unwrap();
    let (report, rankings) = sharded.run_query_set(BAG_QUERIES, 10).unwrap();
    assert_eq!(report.queries, BAG_QUERIES.len());
    assert_eq!(rankings.len(), BAG_QUERIES.len());
    let metrics = report.metrics.expect("telemetry-enabled run reports metrics");
    // The shards share one recorder: the event delta must equal the sum
    // of the shards' monotone store counters — equality fails both if
    // events are double-counted (several recorders attached) and if a
    // shard's events vanish (counters split across instances).
    assert_eq!(metrics.delta.get(Event::RecordLookup), report.record_lookups);
    assert!(report.record_lookups > 0);
    // Each query fetches its terms' records once per shard.
    let mut unsharded = Engine::builder(&device())
        .telemetry(TelemetryOptions::counters_only())
        .build(build_index(200))
        .unwrap();
    let (base_report, _) =
        unsharded.run_query_set_mode(BAG_QUERIES, 10, ExecMode::DaatPruned).unwrap();
    assert!(report.record_lookups >= base_report.record_lookups);
}

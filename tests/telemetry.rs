//! The telemetry subsystem must be a second, independent witness of the
//! paper's measurements: for every backend and execution mode, the Table 5
//! statistics (I = I/O inputs, A = accesses per lookup, B = Kbytes read)
//! derived purely from the `MetricsReport` must equal the `IoSnapshot`
//! deltas the engine measures through `IoStats` — exactly, not
//! approximately — and the cost-model time recomputed from telemetry must
//! equal the `sys_io_time` charge.

use poir::collections::{self, generate_queries, SyntheticCollection};
use poir::core::{BackendKind, Engine, ExecMode, MetricsReport, QuerySetReport, TelemetryOptions};
use poir::inquery::{Index, IndexBuilder, StopWords};
use poir::storage::{CostModel, Device, DeviceConfig};
use poir::telemetry::{Event, Phase};

fn device() -> std::sync::Arc<Device> {
    Device::new(DeviceConfig {
        block_size: 8192,
        os_cache_blocks: 128,
        cost_model: CostModel::default(),
    })
}

fn cacm_fixture() -> (Index, Vec<String>) {
    let paper = collections::cacm();
    let scaled = paper.clone().scale(0.05);
    let collection = SyntheticCollection::new(scaled.spec.clone());
    let mut builder = IndexBuilder::new(StopWords::default());
    for doc in collection.documents() {
        builder.add_document(&doc.name, &doc.text);
    }
    let index = builder.finish();
    let queries =
        generate_queries(&collection, &paper.query_sets[0]).into_iter().map(|q| q.text).collect();
    (index, queries)
}

fn telemetry_engine(index: &Index, backend: BackendKind) -> Engine {
    Engine::builder(&device())
        .backend(backend)
        .telemetry(TelemetryOptions::full())
        .build(index.clone())
        .unwrap()
}

/// The exact-match contract between the two measurement paths.
fn assert_metrics_match(report: &QuerySetReport, context: &str) -> MetricsReport {
    let metrics = report.metrics.clone().unwrap_or_else(|| panic!("{context}: metrics missing"));
    assert_eq!(metrics.io_inputs(), report.io.io_inputs, "{context}: I diverged");
    assert_eq!(metrics.file_accesses(), report.io.file_accesses, "{context}: accesses diverged");
    assert_eq!(metrics.bytes_read(), report.io.bytes_read, "{context}: bytes diverged");
    assert_eq!(metrics.kbytes_read(), report.io.kbytes_read(), "{context}: B diverged");
    assert_eq!(
        metrics.delta.get(Event::IoOutput),
        report.io.io_outputs,
        "{context}: outputs diverged"
    );
    assert_eq!(metrics.record_lookups(), report.record_lookups, "{context}: lookups diverged");
    assert!(
        (metrics.accesses_per_lookup() - report.accesses_per_lookup()).abs() < 1e-12,
        "{context}: A diverged"
    );
    assert_eq!(
        metrics.sim_io_micros,
        report.sys_io_time.as_micros(),
        "{context}: cost-model time diverged"
    );
    metrics
}

#[test]
fn serial_and_batched_counters_match_iostats_on_every_backend() {
    let (index, queries) = cacm_fixture();
    for backend in BackendKind::all() {
        for mode in
            [ExecMode::Serial, ExecMode::BatchedPrefetch, ExecMode::Daat, ExecMode::DaatPruned]
        {
            let mut engine = telemetry_engine(&index, backend);
            let (report, rankings) = engine.run_query_set_mode(&queries, 20, mode).unwrap();
            let context = format!("{backend} / {mode}");
            let metrics = assert_metrics_match(&report, &context);
            assert!(metrics.io_inputs() > 0, "{context}: no I/O recorded");
            assert!(metrics.record_lookups() > 0, "{context}: no lookups recorded");
            assert_eq!(metrics.traces.len(), queries.len(), "{context}: one trace per query");
            assert_eq!(rankings.len(), queries.len());
            // In a serial loop nothing records between per-query snapshots,
            // so the per-query deltas must sum to the set-level delta.
            for event in [Event::RecordLookup, Event::FileAccess, Event::DictLookup] {
                let per_query: u64 = metrics.traces.iter().map(|t| t.get(event)).sum();
                assert_eq!(per_query, metrics.delta.get(event), "{context}: {event:?} sum");
            }
            // Phase histograms saw every query.
            assert_eq!(metrics.delta.phase(Phase::Evaluate).count, queries.len() as u64);
        }
    }
}

#[test]
fn parallel_counters_match_iostats() {
    let (index, queries) = cacm_fixture();
    for threads in [2usize, 4] {
        let mut engine = telemetry_engine(&index, BackendKind::MnemeCache);
        let parallel = engine.run_query_set_parallel(&queries, 20, threads).unwrap();
        let metrics = assert_metrics_match(&parallel.report, &format!("parallel_{threads}"));
        assert!(metrics.io_inputs() > 0);
        // Parallel runs report set-level counters only.
        assert!(metrics.traces.is_empty());
        assert!(metrics.delta.get(Event::DictLookup) > 0, "dict lookups aggregate across threads");
    }
}

#[test]
fn btree_backend_records_descents_and_mneme_records_pool_events() {
    let (index, queries) = cacm_fixture();

    let mut btree = telemetry_engine(&index, BackendKind::BTree);
    let report = btree.run_query_set(&queries, 20).unwrap();
    let metrics = report.metrics.unwrap();
    assert!(metrics.delta.get(Event::BTreeNodeDescent) > 0, "no B-tree descents recorded");

    let mut mneme = telemetry_engine(&index, BackendKind::MnemeCache);
    let report = mneme.run_query_set(&queries, 20).unwrap();
    let metrics = report.metrics.unwrap();
    let refs: u64 = (0..3).map(|p| metrics.delta.pool(p, poir::telemetry::PoolEvent::Ref)).sum();
    assert!(refs > 0, "no pool buffer references recorded");
    assert_eq!(metrics.delta.get(Event::BTreeNodeDescent), 0, "Mneme run touched the B-tree");
}

#[test]
fn disabled_telemetry_reports_no_metrics() {
    let (index, queries) = cacm_fixture();
    let mut engine =
        Engine::builder(&device()).backend(BackendKind::MnemeCache).build(index).unwrap();
    assert!(!engine.telemetry_enabled());
    let report = engine.run_query_set(&queries, 20).unwrap();
    assert!(report.metrics.is_none());
    assert!(report.io.io_inputs > 0, "measurement itself still works");
}

#[test]
fn builder_defaults_reproduce_the_paper_preset() {
    let (index, queries) = cacm_fixture();

    // Defaults: Mneme cached, serial execution, telemetry off.
    let mut defaulted = Engine::builder(&device()).build(index.clone()).unwrap();
    assert_eq!(defaulted.backend(), BackendKind::MnemeCache);
    assert_eq!(defaulted.exec_mode(), ExecMode::Serial);
    assert!(!defaulted.telemetry_enabled());

    // The default buffer sizes are the Table 2 heuristic: building with
    // those sizes passed explicitly must reproduce the exact same I/O.
    let sizes = defaulted.paper_buffer_sizes().unwrap();
    let mut explicit = Engine::builder(&device())
        .backend(BackendKind::MnemeCache)
        .buffers(sizes)
        .exec_mode(ExecMode::Serial)
        .build(index)
        .unwrap();
    let default_report = defaulted.run_query_set(&queries, 20).unwrap();
    let explicit_report = explicit.run_query_set(&queries, 20).unwrap();
    assert_eq!(default_report.io, explicit_report.io);
    assert_eq!(default_report.record_lookups, explicit_report.record_lookups);
}

#[test]
fn query_traced_returns_phase_timings_and_json() {
    let (index, queries) = cacm_fixture();
    let mut engine = telemetry_engine(&index, BackendKind::MnemeCache);
    let (ranked, trace) = engine.query_traced(&queries[0], 10).unwrap();
    assert_eq!(trace.results, ranked.len());
    assert!(trace.get(Event::RecordLookup) > 0);
    assert_eq!(trace.phase_micros.len(), Phase::COUNT);
    let json = trace.to_json();
    for key in ["\"query\"", "\"results\"", "\"phase_micros\"", "\"io\""] {
        assert!(json.contains(key), "trace JSON missing {key}: {json}");
    }
}

#[test]
fn pruned_daat_records_decode_counters() {
    // A corpus where every query term appears in far more than 128
    // documents, so its inverted records carry bit-packed (v2) blocks.
    let mut builder = IndexBuilder::new(StopWords::default());
    for d in 0..400 {
        let mut text = String::from("common ");
        for t in 0..10 {
            text.push_str(&format!("w{} ", (d * 13 + t * 7) % 23));
        }
        builder.add_document(&format!("D{d}"), &text);
    }
    let index = builder.finish();
    let mut engine = telemetry_engine(&index, BackendKind::MnemeCache);
    let (report, rankings) =
        engine.run_query_set_mode(&["common w1 w2"], 10, ExecMode::DaatPruned).unwrap();
    assert_eq!(rankings.len(), 1);
    let metrics = report.metrics.unwrap();
    assert!(metrics.delta.get(Event::BytesDecoded) > 0, "no decoded bytes recorded");
    assert!(metrics.delta.get(Event::BlocksBitpacked) > 0, "no bit-packed blocks recorded");
    // Decoded payload can never exceed the record bytes fetched.
    assert!(
        metrics.delta.get(Event::BytesDecoded) <= metrics.delta.get(Event::RecordBytesDecoded),
        "decoded {} > fetched {}",
        metrics.delta.get(Event::BytesDecoded),
        metrics.delta.get(Event::RecordBytesDecoded)
    );
}

#[test]
fn backend_and_mode_names_round_trip() {
    for backend in BackendKind::all() {
        let s = backend.to_string();
        assert_eq!(s.parse::<BackendKind>().unwrap(), backend, "{s}");
    }
    for mode in [ExecMode::Serial, ExecMode::BatchedPrefetch, ExecMode::Daat, ExecMode::DaatPruned]
    {
        let s = mode.to_string();
        assert_eq!(s.parse::<ExecMode>().unwrap(), mode, "{s}");
    }
    assert!("warp_drive".parse::<BackendKind>().is_err());
    assert!("quantum".parse::<ExecMode>().is_err());
}

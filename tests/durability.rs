//! Durability integration: engines persisted to real host files survive
//! process-style restarts; the recovery log replays across the whole stack.

use poir::core::{BackendKind, Engine};
use poir::inquery::{IndexBuilder, StopWords};
use poir::mneme::recovery::RecoverableFile;
use poir::mneme::{MnemeFile, PoolConfig, PoolId, PoolKindConfig};
use poir::storage::Device;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("poir-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_index() -> poir::inquery::Index {
    let mut b = IndexBuilder::new(StopWords::default());
    for i in 0..200 {
        b.add_document(
            &format!("D{i:03}"),
            &format!("alpha bravo charlie delta item{} group{} payload", i, i % 7),
        );
    }
    b.finish()
}

#[test]
fn engine_survives_restart_on_real_files() {
    let dir = temp_dir("engine");
    for backend in BackendKind::all() {
        let store_path = dir.join(format!("{}.store", backend.label().replace([' ', ','], "")));
        let meta_path = dir.join(format!("{}.meta", backend.label().replace([' ', ','], "")));
        let expected;
        {
            let dev = Device::with_defaults();
            let store = dev.create_file_at(&store_path).unwrap();
            // Build on an in-memory file, then copy bytes onto the real one
            // through the engine's own save path.
            let mut engine = Engine::builder(&dev).backend(backend).build(small_index()).unwrap();
            expected = engine.query("alpha item5", 5).unwrap();
            // Persist the store bytes to the real file.
            let len = engine.store_handle().len().unwrap();
            let bytes = engine.store_handle().read(0, len as usize).unwrap();
            store.write(0, &bytes).unwrap();
            let meta = dev.create_file_at(&meta_path).unwrap();
            engine.save(&meta).unwrap();
        }
        // "Restart": a fresh device, real files reopened from disk.
        {
            let dev = Device::with_defaults();
            let store = dev.create_file_at(&store_path).unwrap();
            let meta = dev.create_file_at(&meta_path).unwrap();
            let mut engine = Engine::builder(&dev).open(store, &meta).unwrap();
            assert_eq!(engine.backend(), backend);
            let got = engine.query("alpha item5", 5).unwrap();
            assert_eq!(expected, got, "backend {}", backend.label());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_log_replays_on_real_files() {
    let dir = temp_dir("recovery");
    let data_path = dir.join("data.mneme");
    let log_path = dir.join("redo.log");
    let pools = vec![
        PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
        PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 4096 } },
    ];
    let (a, b);
    {
        let dev = Device::with_defaults();
        let data = dev.create_file_at(&data_path).unwrap();
        let log = dev.create_file_at(&log_path).unwrap();
        let inner = MnemeFile::create(data, &pools, 8).unwrap();
        let mut rf = RecoverableFile::new(inner, log).unwrap();
        a = rf.create_object(PoolId(1), b"checkpointed").unwrap();
        rf.checkpoint().unwrap();
        b = rf.create_object(PoolId(1), b"only in the log").unwrap();
        rf.update(a, b"checkpointed, then updated").unwrap();
        // Crash: rf dropped without checkpoint; the log file persists.
    }
    {
        let dev = Device::with_defaults();
        let data = dev.create_file_at(&data_path).unwrap();
        let log = dev.create_file_at(&log_path).unwrap();
        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        assert_eq!(recovered.get(a).unwrap(), b"checkpointed, then updated");
        assert_eq!(recovered.get(b).unwrap(), b"only in the log");
    }
    std::fs::remove_dir_all(&dir).ok();
}

mod torn_log_fuzz {
    //! Property tests for redo-log torn tails. The log is synced before
    //! every mutation touches the data file (the write-ahead rule), so
    //! the only realistic crash damage is a garbage/partial record at the
    //! tail — recovery must land on exactly the applied op stream. A
    //! corrupted record mid-log (media damage) must stop replay at the
    //! checksum, never panic, and leave a structurally valid store.

    use poir::mneme::recovery::RecoverableFile;
    use poir::mneme::{MnemeError, MnemeFile, ObjectId, PoolConfig, PoolId, PoolKindConfig};
    use poir::storage::{Device, FileHandle};
    use proptest::prelude::*;

    /// Raw fuzz material: `(kind, target, len)` interpreted against the
    /// live object set as it evolves.
    fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u8, u16)>> {
        proptest::collection::vec((any::<u8>(), any::<u8>(), 1u16..=1000), 1..40)
    }

    fn pools() -> Vec<PoolConfig> {
        vec![
            PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 4096 } },
            PoolConfig {
                id: PoolId(2),
                kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
            },
        ]
    }

    /// Applies the interpreted op stream, returning the created ids and
    /// the model state (payload or tombstone) per creation index.
    #[allow(clippy::type_complexity)]
    fn apply(
        rf: &mut RecoverableFile,
        ops: &[(u8, u8, u16)],
    ) -> (Vec<ObjectId>, Vec<Option<Vec<u8>>>) {
        let mut ids = Vec::new();
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();
        for (n, &(kind, target, len)) in ops.iter().enumerate() {
            let len = len as usize;
            let live: Vec<usize> = (0..model.len()).filter(|&i| model[i].is_some()).collect();
            let k = kind % 10;
            if k <= 4 || (k <= 7 && live.is_empty()) {
                let pool = if len > 600 { PoolId(2) } else { PoolId(1) };
                let data = vec![(n % 251) as u8; len];
                let id = rf.create_object(pool, &data).expect("create");
                ids.push(id);
                model.push(Some(data));
            } else if k <= 6 {
                let obj = live[target as usize % live.len()];
                let data = vec![(n % 251) as u8; len];
                rf.update(ids[obj], &data).expect("update");
                model[obj] = Some(data);
            } else if k == 7 {
                let obj = live[target as usize % live.len()];
                rf.delete(ids[obj]).expect("delete");
                model[obj] = None;
            } else {
                rf.checkpoint().expect("checkpoint");
            }
        }
        (ids, model)
    }

    fn assert_matches_model(
        rec: &mut RecoverableFile,
        ids: &[ObjectId],
        model: &[Option<Vec<u8>>],
    ) {
        for (i, id) in ids.iter().enumerate() {
            match &model[i] {
                Some(data) => {
                    let got = rec.get(*id).expect("live object");
                    assert_eq!(got.as_slice(), data.as_slice(), "object {i}");
                }
                None => assert!(
                    matches!(rec.get(*id), Err(MnemeError::ObjectDeleted(_))),
                    "object {i} should be tombstoned"
                ),
            }
        }
    }

    fn fresh(dev: &std::sync::Arc<Device>) -> (RecoverableFile, FileHandle, FileHandle) {
        let data = dev.create_file();
        let log = dev.create_file();
        let inner = MnemeFile::create(data.clone(), &pools(), 8).unwrap();
        (RecoverableFile::new(inner, log.clone()).unwrap(), data, log)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// A garbage tail shorter than the 14-byte minimum record is the
        /// partial record of an op that never applied; recovery must
        /// discard it and reproduce the applied stream exactly.
        #[test]
        fn garbage_tail_recovers_to_exact_state(
            ops in ops_strategy(),
            garbage in proptest::collection::vec(any::<u8>(), 1..13),
        ) {
            let dev = Device::with_defaults();
            let (mut rf, data, log) = fresh(&dev);
            let (ids, model) = apply(&mut rf, &ops);
            drop(rf);
            let end = log.len().unwrap();
            log.write(end, &garbage).unwrap();
            let mut rec = RecoverableFile::recover(data, log).unwrap();
            assert_matches_model(&mut rec, &ids, &model);
            let report = rec.file().validate().unwrap();
            prop_assert!(report.is_clean(), "problems: {:?}", report.problems);
        }

        /// A flipped bit anywhere in the log must be caught by the record
        /// checksum: recovery stops there without panicking and the store
        /// stays structurally valid.
        #[test]
        fn bit_flip_in_log_is_detected_not_propagated(
            ops in ops_strategy(),
            flip_pos in any::<u64>(),
            flip_bit in 0u8..8,
        ) {
            let dev = Device::with_defaults();
            let (mut rf, data, log) = fresh(&dev);
            let _ = apply(&mut rf, &ops);
            drop(rf);
            let len = log.len().unwrap();
            if len == 0 {
                return; // op stream was all checkpoints; nothing to flip
            }
            let pos = flip_pos % len;
            let byte = log.read(pos, 1).unwrap()[0];
            log.write(pos, &[byte ^ (1 << flip_bit)]).unwrap();
            let mut rec = RecoverableFile::recover(data, log).unwrap();
            let report = rec.file().validate().unwrap();
            prop_assert!(report.is_clean(), "problems: {:?}", report.problems);
        }
    }
}

#[test]
fn storage_faults_surface_as_errors_not_corruption() {
    let dev = Device::with_defaults();
    let mut engine =
        Engine::builder(&dev).backend(BackendKind::MnemeNoCache).build(small_index()).unwrap();
    // Warm nothing; inject a fault after a few reads mid-query-set.
    dev.inject_read_fault_after(Some(3));
    let queries = vec!["alpha bravo charlie delta"; 4];
    let result = engine.run_query_set(&queries, 10);
    assert!(result.is_err(), "the injected fault must propagate");
    dev.inject_read_fault_after(None);
    // The engine remains usable after the transient fault clears.
    let ok = engine.query("alpha", 5).unwrap();
    assert!(!ok.is_empty());
}

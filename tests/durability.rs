//! Durability integration: engines persisted to real host files survive
//! process-style restarts; the recovery log replays across the whole stack.

use poir::core::{BackendKind, Engine};
use poir::inquery::{IndexBuilder, StopWords};
use poir::mneme::recovery::RecoverableFile;
use poir::mneme::{MnemeFile, PoolConfig, PoolId, PoolKindConfig};
use poir::storage::Device;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("poir-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_index() -> poir::inquery::Index {
    let mut b = IndexBuilder::new(StopWords::default());
    for i in 0..200 {
        b.add_document(
            &format!("D{i:03}"),
            &format!("alpha bravo charlie delta item{} group{} payload", i, i % 7),
        );
    }
    b.finish()
}

#[test]
fn engine_survives_restart_on_real_files() {
    let dir = temp_dir("engine");
    for backend in BackendKind::all() {
        let store_path = dir.join(format!("{}.store", backend.label().replace([' ', ','], "")));
        let meta_path = dir.join(format!("{}.meta", backend.label().replace([' ', ','], "")));
        let expected;
        {
            let dev = Device::with_defaults();
            let store = dev.create_file_at(&store_path).unwrap();
            // Build on an in-memory file, then copy bytes onto the real one
            // through the engine's own save path.
            let mut engine = Engine::builder(&dev).backend(backend).build(small_index()).unwrap();
            expected = engine.query("alpha item5", 5).unwrap();
            // Persist the store bytes to the real file.
            let len = engine.store_handle().len().unwrap();
            let bytes = engine.store_handle().read(0, len as usize).unwrap();
            store.write(0, &bytes).unwrap();
            let meta = dev.create_file_at(&meta_path).unwrap();
            engine.save(&meta).unwrap();
        }
        // "Restart": a fresh device, real files reopened from disk.
        {
            let dev = Device::with_defaults();
            let store = dev.create_file_at(&store_path).unwrap();
            let meta = dev.create_file_at(&meta_path).unwrap();
            let mut engine = Engine::builder(&dev).open(store, &meta).unwrap();
            assert_eq!(engine.backend(), backend);
            let got = engine.query("alpha item5", 5).unwrap();
            assert_eq!(expected, got, "backend {}", backend.label());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_log_replays_on_real_files() {
    let dir = temp_dir("recovery");
    let data_path = dir.join("data.mneme");
    let log_path = dir.join("redo.log");
    let pools = vec![
        PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
        PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 4096 } },
    ];
    let (a, b);
    {
        let dev = Device::with_defaults();
        let data = dev.create_file_at(&data_path).unwrap();
        let log = dev.create_file_at(&log_path).unwrap();
        let inner = MnemeFile::create(data, &pools, 8).unwrap();
        let mut rf = RecoverableFile::new(inner, log).unwrap();
        a = rf.create_object(PoolId(1), b"checkpointed").unwrap();
        rf.checkpoint().unwrap();
        b = rf.create_object(PoolId(1), b"only in the log").unwrap();
        rf.update(a, b"checkpointed, then updated").unwrap();
        // Crash: rf dropped without checkpoint; the log file persists.
    }
    {
        let dev = Device::with_defaults();
        let data = dev.create_file_at(&data_path).unwrap();
        let log = dev.create_file_at(&log_path).unwrap();
        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        assert_eq!(recovered.get(a).unwrap(), b"checkpointed, then updated");
        assert_eq!(recovered.get(b).unwrap(), b"only in the log");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn storage_faults_surface_as_errors_not_corruption() {
    let dev = Device::with_defaults();
    let mut engine =
        Engine::builder(&dev).backend(BackendKind::MnemeNoCache).build(small_index()).unwrap();
    // Warm nothing; inject a fault after a few reads mid-query-set.
    dev.inject_read_fault_after(Some(3));
    let queries = vec!["alpha bravo charlie delta"; 4];
    let result = engine.run_query_set(&queries, 10);
    assert!(result.is_err(), "the injected fault must propagate");
    dev.inject_read_fault_after(None);
    // The engine remains usable after the transient fault clears.
    let ok = engine.query("alpha", 5).unwrap();
    assert!(!ok.is_empty());
}

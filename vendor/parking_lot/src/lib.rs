//! Offline stand-in for the `parking_lot` crate (0.12 API subset).
//!
//! The build environment has no network access, so this shim provides the
//! pieces the workspace uses — `Mutex` and `RwLock` with parking_lot's
//! non-poisoning semantics (`lock()` / `read()` / `write()` return guards
//! directly, recovering the data if a previous holder panicked) — as thin
//! wrappers over `std::sync`. Fairness and parking behaviour are std's.

use std::fmt;
use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that is never poisoned.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike std, a panic in a
    /// previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock that is never poisoned.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        let mut l = l;
        l.get_mut().push(5);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the small slice of `rand` it actually uses: a seedable
//! `StdRng` (xoshiro256** seeded through SplitMix64), the `Rng` extension
//! trait with `gen` / `gen_range`, and uniform sampling for the integer and
//! float types the collections and tests draw. Distribution quality matches
//! what the callers need (Zipf sampling, synthetic text, fuzz inputs); it is
//! NOT a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full value range via
/// [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types that support uniform sampling from a sub-range.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi]` (both inclusive). `lo <= hi` required.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Rejection sampling over the smallest power-of-two envelope
                // so the distribution is exactly uniform.
                let span = span + 1;
                let mask = span.next_power_of_two().wrapping_sub(1);
                loop {
                    let draw = rng.next_u64() & mask;
                    if draw < span {
                        return lo.wrapping_add(draw as $t);
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                // Shift into the unsigned domain, sample, shift back.
                let offset = <$t>::MIN;
                let ulo = lo.wrapping_sub(offset) as $u;
                let uhi = hi.wrapping_sub(offset) as $u;
                (<$u>::sample_inclusive(rng, ulo, uhi) as $t).wrapping_add(offset)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + OneStep> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_inclusive(rng, self.start, self.end.step_down())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Helper for converting a half-open upper bound into an inclusive one.
pub trait OneStep {
    fn step_down(self) -> Self;
}

macro_rules! impl_one_step {
    ($($t:ty),*) => {$(
        impl OneStep for $t {
            fn step_down(self) -> Self {
                self - 1
            }
        }
    )*};
}
impl_one_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl OneStep for f64 {
    fn step_down(self) -> Self {
        // Half-open float ranges sample `[lo, hi)` already; no adjustment.
        self
    }
}

/// Extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution
    /// (full integer range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256** with SplitMix64 seeding.
/// Deterministic for a given seed on every platform.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, as recommended by the xoshiro
        // authors, so nearby seeds produce unrelated streams.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let mut s3n = s3 ^ s1;
        let s1n = s1 ^ s2n;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        s3n = s3n.rotate_left(45);
        self.s = [s0n, s1n, s2n, s3n];
        result
    }
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Convenience prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&x));
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

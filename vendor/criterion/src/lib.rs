//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment has no network access, so this shim provides the
//! surface the workspace's `harness = false` benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple mean-of-samples timer. It prints
//! one line per benchmark (mean time per iteration, plus derived throughput
//! when configured) instead of criterion's statistical reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration workload units, used to derive throughput from timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    warm_up: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses (at least once) and
        // estimate the per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget_per_sample = self.measurement.as_secs_f64() / self.samples as f64;
        let batch = ((budget_per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += batch;
        }
        self.last_mean_ns = total_ns / total_iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mb_s = n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            format!("  ({mb_s:.1} MiB/s)")
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (mean_ns / 1e9);
            format!("  ({elem_s:.0} elem/s)")
        }
        None => String::new(),
    };
    println!("bench {name:<40} {}{rate}", human_time(mean_ns));
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement: Duration::from_secs(1),
            warm_up: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            samples: self.sample_size,
            measurement: self.measurement,
            warm_up: self.warm_up,
            last_mean_ns: 0.0,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b);
        report(name, b.last_mean_ns, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl BenchId,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.criterion.bencher();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.render()), b.last_mean_ns, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.criterion.bencher();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.last_mean_ns, self.throughput);
        self
    }

    /// Ends the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] benchmark names.
pub trait BenchId {
    fn render(&self) -> String;
}

impl BenchId for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl BenchId for String {
    fn render(&self) -> String {
        self.clone()
    }
}

impl BenchId for BenchmarkId {
    fn render(&self) -> String {
        self.id.clone()
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1u32)));
        group.finish();
    }

    criterion_group! {
        name = quick;
        config = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        quick();
    }
}

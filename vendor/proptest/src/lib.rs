//! Offline stand-in for the `proptest` crate (API subset).
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the slice of proptest it uses: the `proptest!` /
//! `prop_oneof!` / `prop_assert*!` macros, `Strategy` with `prop_map` and
//! `prop_flat_map`, integer-range / `any` / `Just` / tuple / regex-string
//! strategies, and `collection::{vec, btree_set}`.
//!
//! Differences from real proptest, by design:
//! * cases are generated from a per-case deterministic seed (reproducible on
//!   every run and platform) rather than OS entropy;
//! * no shrinking — a failing case reports the generated inputs verbatim;
//! * `prop_assert*!` panics (the runner catches the panic, prints the case,
//!   and re-raises) instead of returning `TestCaseError`.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Runner configuration. Only the knobs the workspace touches.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (mirrors proptest's constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case number `case` of a deterministic run.
    pub fn for_case(case: u64) -> Self {
        TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mask = n.next_power_of_two().wrapping_sub(1);
        loop {
            let draw = self.next_u64() & mask;
            if draw < n {
                return draw;
            }
        }
    }

    /// Uniform draw from the inclusive span `[lo, hi]` (i128 to cover every
    /// integer type up to 64 bits, signed or unsigned).
    pub fn span_inclusive(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128;
        if span >= u64::MAX as u128 {
            return lo + self.next_u64() as i128;
        }
        lo + self.below(span as u64 + 1) as i128
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty());
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.span_inclusive(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.span_inclusive(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        let unit = rng.next_u64() as f64 / u64::MAX as f64;
        self.start() + unit * (self.end() - self.start())
    }
}

/// Full-range strategy for a primitive type; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Types usable with [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform strategy over the whole value range of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies: `"[a-z]{3,6}( [a-z]{3,6}){2,10}"` etc.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum RegexNode {
    Lit(char),
    Class(Vec<(char, char)>),
    Group(Vec<RegexAtom>),
}

#[derive(Debug, Clone)]
struct RegexAtom {
    node: RegexNode,
    min: u32,
    max: u32,
}

/// Strategy compiled from a regex-subset pattern: literals, `[a-z]`-style
/// classes (ranges and singletons), `(...)` groups, and `{m}` / `{m,n}` /
/// `?` / `*` / `+` quantifiers.
#[derive(Debug, Clone)]
pub struct StringStrategy {
    atoms: Vec<RegexAtom>,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    while let Some(c) = chars.next() {
        if c == ']' {
            return ranges;
        }
        let lo = if c == '\\' { chars.next().expect("dangling escape in class") } else { c };
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next(); // consume '-'
            match ahead.peek() {
                Some(&hi) if hi != ']' => {
                    chars.next();
                    chars.next();
                    ranges.push((lo, hi));
                    continue;
                }
                _ => {}
            }
        }
        ranges.push((lo, lo));
    }
    panic!("unterminated character class in pattern");
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad {m,n} quantifier"),
                    n.trim().parse().expect("bad {m,n} quantifier"),
                ),
                None => {
                    let m = body.trim().parse().expect("bad {m} quantifier");
                    (m, m)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse_seq(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    in_group: bool,
) -> Vec<RegexAtom> {
    let mut atoms = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            if in_group {
                chars.next();
                return atoms;
            }
            panic!("unbalanced ')' in pattern");
        }
        chars.next();
        let node = match c {
            '[' => RegexNode::Class(parse_class(chars)),
            '(' => RegexNode::Group(parse_seq(chars, true)),
            '\\' => RegexNode::Lit(chars.next().expect("dangling escape")),
            other => RegexNode::Lit(other),
        };
        let (min, max) = parse_quantifier(chars);
        assert!(min <= max, "inverted quantifier in pattern");
        atoms.push(RegexAtom { node, min, max });
    }
    assert!(!in_group, "unterminated group in pattern");
    atoms
}

impl StringStrategy {
    /// Compiles `pattern`; panics on syntax outside the supported subset.
    pub fn from_pattern(pattern: &str) -> Self {
        let mut chars = pattern.chars().peekable();
        StringStrategy { atoms: parse_seq(&mut chars, false) }
    }
}

fn generate_atoms(atoms: &[RegexAtom], rng: &mut TestRng, out: &mut String) {
    for atom in atoms {
        let reps = rng.span_inclusive(atom.min as i128, atom.max as i128) as u32;
        for _ in 0..reps {
            match &atom.node {
                RegexNode::Lit(c) => out.push(*c),
                RegexNode::Class(ranges) => {
                    let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                    out.push(
                        char::from_u32(rng.span_inclusive(lo as i128, hi as i128) as u32)
                            .expect("class range crosses a surrogate gap"),
                    );
                }
                RegexNode::Group(inner) => generate_atoms(inner, rng, out),
            }
        }
    }
}

impl Strategy for StringStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        generate_atoms(&self.atoms, rng, &mut out);
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Compiled per generate call; fine at test-case volumes.
        StringStrategy::from_pattern(self).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Strategies for containers of generated values.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size span for generated containers.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.span_inclusive(self.min as i128, self.max as i128) as usize
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `BTreeSet` with a target size drawn from `size`. If the element
    /// domain is too small to reach the target, returns as many distinct
    /// elements as a bounded number of draws produced.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = target * 20 + 50;
            while set.len() < target && attempts > 0 {
                set.insert(self.elem.generate(rng));
                attempts -= 1;
            }
            set
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Test-runner internals used by the `proptest!` macro expansion.
pub mod test_runner {
    use super::{ProptestConfig, Strategy, TestRng};
    use std::fmt::Debug;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runs `test` against `config.cases` deterministic generated cases,
    /// reporting the generated inputs of the first failing case.
    pub fn run<S, F>(config: &ProptestConfig, strategy: S, mut test: F)
    where
        S: Strategy,
        S::Value: Debug,
        F: FnMut(S::Value),
    {
        for case in 0..config.cases as u64 {
            let mut rng = TestRng::for_case(case);
            let value = strategy.generate(&mut rng);
            let rendered = format!("{value:?}");
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| test(value))) {
                eprintln!("proptest: case #{case} failed with input: {rendered}");
                resume_unwind(payload);
            }
        }
    }
}

/// Property assertion; panics on failure (the runner attributes the panic to
/// the generated case).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted or unweighted choice between strategies producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::test_runner::run(&config, strategy, |($($arg,)+)| $body);
            }
        )*
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

// Re-exported so `$crate::Strategy::boxed` resolves in macro expansions.
pub use collection as __collection;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategies_match_shape() {
        let strat = "[a-z]{3,6}( [a-z]{3,6}){2,10}";
        let mut rng = crate::TestRng::for_case(5);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            let words: Vec<&str> = s.split(' ').collect();
            assert!(words.len() >= 3 && words.len() <= 11, "bad word count in {s:?}");
            for w in words {
                assert!(w.len() >= 3 && w.len() <= 6, "bad word len in {s:?}");
                assert!(w.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn printable_class_range() {
        let mut rng = crate::TestRng::for_case(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[ -~]{0,120}", &mut rng);
            assert!(s.len() <= 120);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn oneof_and_collections(
            v in collection::vec(prop_oneof![2 => 0u32..10, 1 => Just(99u32)], 1..40),
            s in collection::btree_set(0u8..16, 0..10usize),
            (a, b) in (0u16..100, any::<u8>()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|&x| x < 10 || x == 99));
            prop_assert!(s.len() <= 10);
            prop_assert!(a < 100);
            let _ = b;
            prop_assert_ne!(v.len(), 0);
            prop_assert_eq!(v.len(), v.iter().fold(0, |n, _| n + 1));
        }
    }

    proptest! {
        #[test]
        fn flat_map_dependent_pair((len, idx) in (1usize..20).prop_flat_map(|l| (Just(l), 0usize..l))) {
            prop_assert!(idx < len);
        }
    }
}

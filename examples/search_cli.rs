//! An interactive search shell over a synthetic collection.
//!
//! ```text
//! cargo run --release --example search_cli            # CACM-like corpus
//! echo "#and(bani caba)" | cargo run --release --example search_cli
//! ```
//!
//! Type INQUERY queries (`word word`, `#and(...)`, `#or(...)`, `#not(...)`,
//! `#sum`, `#wsum(w t ...)`, `#max`, `#phrase(...)`, `#uwN(...)`); special
//! commands: `:stats` (store statistics), `:term <word>` (dictionary entry),
//! `:daat <bag query>` (document-at-a-time), `:explain <doc#> <query>`
//! (per-node belief breakdown), `:quit`.

use std::io::{BufRead, Write};

use poir::collections::{self, SyntheticCollection};
use poir::core::{BackendKind, Engine};
use poir::inquery::{IndexBuilder, StopWords};

fn main() {
    let paper = collections::cacm().scale(0.5);
    let collection = SyntheticCollection::new(paper.spec.clone());
    eprintln!("indexing {} documents ...", paper.spec.num_docs);
    let mut builder = IndexBuilder::new(StopWords::default());
    for doc in collection.documents() {
        builder.add_document(&doc.name, &doc.text);
    }
    let index = builder.finish();
    eprintln!(
        "ready: {} terms, {} records (try `:term {}` or a bare-word query)",
        index.dictionary.len(),
        index.records.len(),
        index.dictionary.term(poir::inquery::TermId(0)),
    );
    let device = poir::storage::Device::with_defaults();
    let mut engine = Engine::builder(&device)
        .backend(BackendKind::MnemeCache)
        .build(index)
        .expect("engine build");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("poir> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":stats" {
            let snap = engine.device().stats().snapshot();
            println!(
                "store: {} KB; device: {} reads, {} disk blocks, {} KB requested",
                engine.store_file_size().map(|s| s / 1024).unwrap_or(0),
                snap.file_accesses,
                snap.io_inputs,
                snap.kbytes_read()
            );
            continue;
        }
        if let Some(word) = line.strip_prefix(":term ") {
            match engine.dictionary().lookup(word.trim()) {
                Some(id) => {
                    let e = engine.dictionary().entry(id);
                    println!(
                        "term {:?}: id {}, df {}, cf {}, store ref {:#x}",
                        word.trim(),
                        id.0,
                        e.df,
                        e.cf,
                        e.store_ref
                    );
                }
                None => println!("term {:?} is not in the dictionary", word.trim()),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(":explain ") {
            let mut parts = rest.splitn(2, ' ');
            let doc: Option<u32> = parts.next().and_then(|d| d.parse().ok());
            match (doc, parts.next()) {
                (Some(doc), Some(query)) => {
                    match engine.explain(query, poir::inquery::DocId(doc)) {
                        Ok(e) => print!("{}", e.render()),
                        Err(e) => println!("error: {e}"),
                    }
                }
                _ => println!("usage: :explain <doc#> <query>"),
            }
            continue;
        }
        let started = std::time::Instant::now();
        let result = if let Some(bag) = line.strip_prefix(":daat ") {
            engine.query_daat(bag, 10)
        } else {
            engine.query(line, 10)
        };
        match result {
            Ok(hits) if hits.is_empty() => println!("no documents match"),
            Ok(hits) => {
                for (i, h) in hits.iter().enumerate() {
                    println!("{:>2}. {:<16} {:.4}", i + 1, h.name, h.score);
                }
                println!("({} hits in {:?})", hits.len(), started.elapsed());
            }
            Err(e) => println!("error: {e}"),
        }
    }
}

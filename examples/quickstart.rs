//! Quickstart: index a handful of documents and search them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds an INQUERY-style index over a small in-memory corpus, loads it
//! into the Mneme persistent object store (the paper's configuration), and
//! runs a few structured queries.

use poir::core::{BackendKind, Engine};
use poir::inquery::{IndexBuilder, StopWords};
use poir::storage::Device;

fn main() {
    // 1. Index some documents. The builder tokenizes, removes stop words,
    //    and produces compressed inverted records.
    let mut builder = IndexBuilder::new(StopWords::default());
    let corpus = [
        ("EDBT94-01", "full text information retrieval with a persistent object store"),
        ("EDBT94-02", "the inverted file index maps every term to its posting list"),
        ("EDBT94-03", "mneme groups objects into pools and physical segments"),
        ("EDBT94-04", "the b-tree package was the custom data management facility"),
        ("EDBT94-05", "buffer management policies decide which segments stay resident"),
        ("EDBT94-06", "query processing reads the complete record for one term at a time"),
        ("EDBT94-07", "persistent object store performance beats the custom package"),
        ("EDBT94-08", "recall and precision measure retrieval effectiveness"),
    ];
    for (name, text) in corpus {
        builder.add_document(name, text);
    }
    let index = builder.finish();
    println!(
        "indexed {} documents, {} terms, {} inverted records",
        index.documents.len(),
        index.dictionary.len(),
        index.records.len()
    );

    // 2. Load the index into an engine. `MnemeCache` is the paper's
    //    three-pool object store with the Table 2 buffer heuristics.
    let device = Device::with_defaults();
    let mut engine = Engine::builder(&device)
        .backend(BackendKind::MnemeCache)
        .build(index)
        .expect("engine build");

    // 3. Search. Bare words form a probabilistic #sum query; structured
    //    operators (#and, #or, #not, #wsum, #phrase, #uwN) compose freely.
    for query in [
        "persistent object store",
        "#and(inverted index)",
        "#phrase(object store)",
        "#wsum(3 performance 1 retrieval)",
        "#uw8(buffer resident)",
    ] {
        println!("\nquery: {query}");
        let results = engine.query(query, 3).expect("query");
        if results.is_empty() {
            println!("  (no matching documents)");
        }
        for (i, r) in results.iter().enumerate() {
            println!("  {}. {:<10} belief {:.4}", i + 1, r.name, r.score);
        }
    }

    // 4. The store is dynamic: add a document and find it immediately.
    engine
        .add_document("EDBT94-09", "dynamic update adds documents without re-indexing")
        .expect("add document");
    let results = engine.query("dynamic update", 1).expect("query");
    println!("\nafter add_document: top hit for 'dynamic update' = {}", results[0].name);
}

//! A tour of the Mneme persistent object store used directly — pools,
//! buffers, reservations, inter-object references, crash recovery.
//!
//! ```text
//! cargo run --release --example object_store_tour
//! ```
//!
//! Everything here also persists to real files: the simulated device can be
//! backed by the host filesystem (`Device::create_file_at`), which is what
//! this example does in a temporary directory.

use poir::core::chunked;
use poir::mneme::{
    recovery::RecoverableFile, LruBuffer, MnemeFile, PoolConfig, PoolId, PoolKindConfig,
};
use poir::storage::Device;

fn main() {
    let dir = std::env::temp_dir().join(format!("poir-tour-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let device = Device::with_defaults();

    // --- pools -----------------------------------------------------------
    // A file is created with a pool set; each pool owns its segment layout.
    let pools = vec![
        PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
        PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 8192 } },
        PoolConfig {
            id: PoolId(2),
            kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
        },
        PoolConfig {
            id: PoolId(3),
            kind: PoolKindConfig::SegmentPerObject { embedded_refs: true },
        },
    ];
    let handle = device.create_file_at(&dir.join("store.mneme")).expect("file");
    let mut file = MnemeFile::create(handle.clone(), &pools, 32).expect("create");

    let tiny = file.create_object(PoolId(0), b"12 bytes max").expect("small");
    let medium = file.create_object(PoolId(1), &vec![0xAB; 2000]).expect("medium");
    let large = file.create_object(PoolId(2), &vec![0xCD; 200_000]).expect("large");
    println!("created {tiny:?} (small pool), {medium:?} (medium), {large:?} (large)");

    // --- buffers and reservation -----------------------------------------
    // Attach an LRU buffer to the large pool, touch the object, reserve it,
    // and watch the hit statistics.
    file.attach_buffer(PoolId(2), Box::new(LruBuffer::new(1 << 20))).expect("buffer");
    file.get(large).expect("get");
    file.reserve(&[large]);
    file.get(large).expect("get");
    file.release_reservations();
    let stats = file.buffer_stats(PoolId(2)).expect("stats");
    println!(
        "large-pool buffer: {} refs, {} hits (rate {:.2})",
        stats.refs,
        stats.hits,
        stats.hit_rate()
    );

    // --- inter-object references: chunked large objects -------------------
    // Break a large object into linked chunks for incremental retrieval
    // (the paper's Section 6 future-work item).
    let big_payload: Vec<u8> = (0..150_000u32).map(|i| (i % 251) as u8).collect();
    let root = chunked::store(&mut file, PoolId(3), PoolId(2), &big_payload, 32_768)
        .expect("chunked store");
    let mut cursor = chunked::ChunkCursor::open(&mut file, root).expect("cursor");
    println!(
        "chunked object {root:?}: {} bytes in {} chunks; first chunk has {} bytes",
        cursor.total_len(),
        cursor.num_chunks(),
        cursor.next_chunk(&mut file).expect("chunk").expect("first").len()
    );
    assert_eq!(chunked::load(&mut file, root).expect("load"), big_payload);

    // --- persistence -------------------------------------------------------
    file.flush().expect("flush");
    drop(file);
    let reopened = MnemeFile::open(handle).expect("open");
    assert_eq!(reopened.get(tiny).expect("get"), b"12 bytes max");
    println!("reopened the store from disk; objects intact");

    // --- crash recovery ----------------------------------------------------
    // Wrap a file with a redo log, mutate, "crash", recover.
    let data = device.create_file_at(&dir.join("recoverable.mneme")).expect("file");
    let log = device.create_file_at(&dir.join("recoverable.log")).expect("file");
    let inner = MnemeFile::create(data.clone(), &pools, 16).expect("create");
    let mut recoverable = RecoverableFile::new(inner, log.clone()).expect("wrap");
    let a = recoverable.create_object(PoolId(1), b"logged before the crash").expect("create");
    drop(recoverable); // crash: no checkpoint ran
    let mut recovered = RecoverableFile::recover(data, log).expect("recover");
    println!(
        "recovered after crash: {:?} -> {:?}",
        a,
        String::from_utf8_lossy(&recovered.get(a).expect("get"))
    );

    // --- the I/O ledger ----------------------------------------------------
    let snapshot = device.stats().snapshot();
    println!(
        "device totals: {} reads / {} writes / {} disk block inputs / {} KB read",
        snapshot.file_accesses,
        snapshot.file_writes,
        snapshot.io_inputs,
        snapshot.kbytes_read()
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! Dynamic update: a newswire that never stops.
//!
//! ```text
//! cargo run --release --example newswire_updates
//! ```
//!
//! The original INQUERY treated collections as archival — "addition or
//! deletion of a single document ... requires the entire document collection
//! to be re-indexed" (Section 2). The object store removes that
//! restriction: this example starts from a TIPSTER-like core, streams in
//! breaking-news documents one at a time, retires old ones, and compacts
//! the store to reclaim the holes — all while queries keep working.

use poir::collections::{self, SyntheticCollection};
use poir::core::{BackendKind, Engine};
use poir::inquery::{IndexBuilder, StopWords};
use poir::storage::Device;

fn main() {
    // A small TIPSTER-like core collection.
    let paper = collections::tipster().scale(0.02);
    let collection = SyntheticCollection::new(paper.spec.clone());
    let mut builder = IndexBuilder::new(StopWords::default());
    for doc in collection.documents() {
        builder.add_document(&doc.name, &doc.text);
    }
    let index = builder.finish();
    let device = Device::with_defaults();
    let mut engine = Engine::builder(&device)
        .backend(BackendKind::MnemeCache)
        .build(index)
        .expect("engine build");
    println!(
        "core collection: {} documents, {} terms",
        engine.documents().len(),
        engine.dictionary().len()
    );

    // Breaking news arrives. Each article is indexed incrementally: every
    // term's inverted record is fetched, extended, and written back through
    // the object store (growing records migrate between pools
    // automatically).
    let articles = [
        ("WIRE-001", "markets rally as the persistent object store consortium reports earnings"),
        ("WIRE-002", "storage summit keynote praises inverted file caching strategies"),
        ("WIRE-003", "markets slide after buffer management scandal rocks the consortium"),
        ("WIRE-004", "obscure zeppelin sighting dominates the evening newswire"),
    ];
    let mut wire_docs = Vec::new();
    for (name, text) in articles {
        wire_docs.push((engine.add_document(name, text).expect("add"), text));
        println!("added {name}");
    }

    for query in ["markets consortium", "zeppelin", "buffer management"] {
        let hits = engine.query(query, 3).expect("query");
        let names: Vec<&str> = hits.iter().map(|h| h.name.as_str()).collect();
        println!("query {query:?} → {names:?}");
    }

    // A correction comes in: retire the zeppelin story.
    let (doc, text) = wire_docs[3];
    engine.remove_document(doc, text).expect("remove");
    let hits = engine.query("zeppelin", 3).expect("query");
    println!("after retirement, query \"zeppelin\" → {} hits", hits.len());

    // Deletions leave tombstones; offline compaction reclaims them. (This
    // drops to the Mneme layer — the gc module rewrites live objects into a
    // fresh file and reports the space reclaimed.)
    let pools = vec![poir::mneme::PoolConfig {
        id: poir::mneme::PoolId(0),
        kind: poir::mneme::PoolKindConfig::Packed { segment_size: 8192 },
    }];
    let mut demo =
        poir::mneme::MnemeFile::create(device.create_file(), &pools, 16).expect("create");
    let mut ids = Vec::new();
    for i in 0..500u32 {
        ids.push(demo.create_object(poir::mneme::PoolId(0), &[i as u8; 64]).expect("create"));
    }
    for id in ids.iter().skip(1).step_by(2) {
        demo.delete(*id).expect("delete");
    }
    let (_compacted, _map, stats) =
        poir::mneme::gc::compact(&mut demo, device.create_file(), &pools, 16).expect("compact");
    println!(
        "compaction demo: {} objects copied, file {} KB → {} KB",
        stats.objects_copied,
        stats.bytes_before / 1024,
        stats.bytes_after / 1024
    );
}

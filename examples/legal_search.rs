//! The paper's Legal scenario: a specialised collection queried in batch,
//! comparing the three storage configurations.
//!
//! ```text
//! cargo run --release --example legal_search
//! ```
//!
//! Generates a scaled synthetic Legal collection (11,953 case descriptions
//! at 10% scale), builds all three inverted-file configurations, processes
//! Legal Query Set 2 against each, and prints the paper's comparison: time,
//! I/O statistics, buffer hit rates, and retrieval effectiveness.

use poir::collections::{self, generate_queries, judgments_for, SyntheticCollection};
use poir::core::{BackendKind, Engine};
use poir::inquery::{IndexBuilder, ScoredDoc, StopWords};
use poir::storage::{CostModel, Device, DeviceConfig};

fn main() {
    let paper = collections::legal().scale(0.10);
    let collection = SyntheticCollection::new(paper.spec.clone());
    println!("generating + indexing {} legal case descriptions ...", paper.spec.num_docs);
    let mut builder = IndexBuilder::new(StopWords::default());
    for doc in collection.documents() {
        builder.add_document(&doc.name, &doc.text);
    }
    let index = builder.finish();
    println!(
        "  {} terms, {} records, {:.1}% of records are 12 bytes or less\n",
        index.dictionary.len(),
        index.records.len(),
        index.fraction_at_most(12) * 100.0
    );

    let qs2 = &paper.query_sets[1];
    let queries = generate_queries(&collection, qs2);
    let texts: Vec<&str> = queries.iter().map(|q| q.text.as_str()).collect();
    println!("sample query ({}):\n  {}\n", qs2.name, &queries[0].text);

    println!(
        "{:<18} {:>12} {:>8} {:>8} {:>10}",
        "Configuration", "sys+I/O (s)", "I", "A", "B (KB)"
    );
    let mut effectiveness_printed = false;
    for backend in BackendKind::all() {
        let device = Device::new(DeviceConfig {
            block_size: 8192,
            os_cache_blocks: 512,
            cost_model: CostModel::default(),
        });
        let mut engine =
            Engine::builder(&device).backend(backend).build(index.clone()).expect("engine build");
        let report = engine.run_query_set(&texts, 100).expect("query set");
        println!(
            "{:<18} {:>12.2} {:>8} {:>8.2} {:>10}",
            backend.label(),
            report.sys_io_time.as_secs_f64(),
            report.io_inputs(),
            report.accesses_per_lookup(),
            report.kbytes_read()
        );
        if let Some(stats) = report.buffer_stats {
            for (pool, s) in ["small", "medium", "large"].iter().zip(stats) {
                if s.refs > 0 {
                    println!(
                        "{:<18}   {} buffer: {} refs, {} hits (rate {:.2})",
                        "",
                        pool,
                        s.refs,
                        s.hits,
                        s.hit_rate()
                    );
                }
            }
        }
        // Effectiveness is identical across configurations; print once.
        if !effectiveness_printed && backend == BackendKind::MnemeCache {
            effectiveness_printed = true;
            let mut aps = Vec::new();
            let mut p10 = Vec::new();
            for q in &queries {
                let ranked = engine.query(&q.text, 100).expect("query");
                let scored: Vec<ScoredDoc> =
                    ranked.iter().map(|r| ScoredDoc { doc: r.doc, score: r.score }).collect();
                let judgments = judgments_for(&collection, q);
                aps.push(judgments.average_precision(&scored));
                p10.push(judgments.precision_at(&scored, 10));
            }
            println!(
                "\nretrieval effectiveness over {} queries: MAP {:.3}, P@10 {:.3}\n",
                queries.len(),
                poir::inquery::metrics::mean(&aps),
                poir::inquery::metrics::mean(&p10),
            );
        }
    }
}
